"""Unit tests for both light clients and the chunked-update planner."""

import pytest

from repro.crypto.hashing import Hash
from repro.crypto.simsig import SimSigScheme
from repro.errors import ClientError, EvidenceError
from repro.guest.block import GuestBlockHeader
from repro.guest.epoch import Epoch
from repro.lightclient.chunked import (
    plan_update_chunks,
    signatures_per_transaction,
    usable_chunk_bytes,
)
from repro.lightclient.guest_client import GuestClientUpdate, GuestLightClient
from repro.lightclient.tendermint import (
    CometHeader,
    Commit,
    LightClientUpdate,
    TendermintLightClient,
    ValidatorSet,
)
from repro.units import MAX_TRANSACTION_BYTES


@pytest.fixture
def scheme():
    return SimSigScheme()


def make_keys(scheme, count, salt=0):
    return [
        scheme.keypair_from_seed(bytes([salt]) + i.to_bytes(4, "big") + bytes(27))
        for i in range(count)
    ]


# ---------------------------------------------------------------------------
# Guest light client (what the counterparty runs)
# ---------------------------------------------------------------------------

class TestGuestLightClient:
    def setup_epoch(self, scheme, count=4, stake=100):
        keys = make_keys(scheme, count)
        validators = {kp.public_key: stake for kp in keys}
        total = stake * count
        epoch = Epoch(epoch_id=0, validators=validators, quorum_stake=total * 2 // 3 + 1)
        return keys, epoch

    def make_header(self, epoch, height=1, root=None, **overrides):
        defaults = dict(
            height=height,
            prev_hash=Hash.zero(),
            timestamp=50.0,
            host_slot=125,
            state_root=root or Hash.of(b"state"),
            epoch_id=epoch.epoch_id,
            epoch_hash=epoch.canonical_hash(),
        )
        defaults.update(overrides)
        return GuestBlockHeader(**defaults)

    def signed_update(self, keys, epoch, header, signers=None, **kw):
        message = header.sign_message()
        chosen = keys if signers is None else signers
        return GuestClientUpdate(
            header=header,
            signatures={kp.public_key: kp.sign(message) for kp in chosen},
            **kw,
        )

    def test_quorum_update_accepted(self, scheme):
        keys, epoch = self.setup_epoch(scheme)
        client = GuestLightClient(scheme, epoch)
        header = self.make_header(epoch)
        client.update(self.signed_update(keys, epoch, header))
        assert client.latest_height() == 1
        assert client.consensus_root(1) == header.state_root
        assert client.consensus_timestamp(1) == 50.0

    def test_insufficient_stake_rejected(self, scheme):
        keys, epoch = self.setup_epoch(scheme)
        client = GuestLightClient(scheme, epoch)
        header = self.make_header(epoch)
        with pytest.raises(ClientError):
            client.update(self.signed_update(keys, epoch, header, signers=keys[:2]))

    def test_forged_signature_ignored(self, scheme):
        keys, epoch = self.setup_epoch(scheme, count=3)
        client = GuestLightClient(scheme, epoch)
        header = self.make_header(epoch)
        update = self.signed_update(keys, epoch, header, signers=keys[:2])
        # Add a signature by the third validator — over the wrong message.
        bogus = dict(update.signatures)
        bogus[keys[2].public_key] = keys[2].sign(b"something else")
        with pytest.raises(ClientError):
            client.update(GuestClientUpdate(header=header, signatures=bogus))

    def test_non_validator_signatures_ignored(self, scheme):
        keys, epoch = self.setup_epoch(scheme)
        outsiders = make_keys(scheme, 4, salt=9)
        client = GuestLightClient(scheme, epoch)
        header = self.make_header(epoch)
        with pytest.raises(ClientError):
            client.update(self.signed_update(outsiders, epoch, header))

    def rotated_epoch(self, scheme, keys, epoch_id, keep=3, fresh=2, salt=5):
        """A successor epoch sharing ``keep`` members with the old one."""
        new_keys = keys[:keep] + make_keys(scheme, fresh, salt=salt)
        return new_keys, Epoch(
            epoch_id=epoch_id,
            validators={kp.public_key: 100 for kp in new_keys},
            quorum_stake=100 * len(new_keys) * 2 // 3 + 1,
        )

    def test_epoch_rotation_requires_new_set(self, scheme):
        keys, epoch0 = self.setup_epoch(scheme)
        new_keys, epoch1 = self.rotated_epoch(scheme, keys, epoch_id=1)
        client = GuestLightClient(scheme, epoch0)
        header = self.make_header(epoch1, height=5, epoch_id=1,
                                  epoch_hash=epoch1.canonical_hash())
        with pytest.raises(ClientError):
            client.update(self.signed_update(new_keys, epoch1, header))
        client.update(self.signed_update(new_keys, epoch1, header, new_epoch=epoch1))
        assert client.epoch.epoch_id == 1

    def test_epoch_skipping_allowed_with_overlap(self, scheme):
        """Alg. 2 only relays blocks with content, so a client can miss
        whole epochs; a later epoch is adopted when the set is supplied
        and its signers overlap the trusted epoch by more than 1/3."""
        keys, epoch0 = self.setup_epoch(scheme)
        new_keys, epoch5 = self.rotated_epoch(scheme, keys, epoch_id=5)
        client = GuestLightClient(scheme, epoch0)
        header = self.make_header(epoch5, epoch_id=5,
                                  epoch_hash=epoch5.canonical_hash())
        client.update(self.signed_update(new_keys, epoch5, header, new_epoch=epoch5))
        assert client.epoch.epoch_id == 5

    def test_epoch_takeover_without_overlap_rejected(self, scheme):
        """The trust rule: an epoch signed by a completely disjoint set
        (a fabricated takeover) is rejected even with a valid quorum of
        its own stake."""
        keys, epoch0 = self.setup_epoch(scheme)
        imposters = make_keys(scheme, 4, salt=7)
        fake = Epoch(
            epoch_id=1,
            validators={kp.public_key: 100 for kp in imposters},
            quorum_stake=400 * 2 // 3 + 1,
        )
        client = GuestLightClient(scheme, epoch0)
        header = self.make_header(fake, epoch_id=1,
                                  epoch_hash=fake.canonical_hash())
        with pytest.raises(ClientError, match="1/3"):
            client.update(self.signed_update(imposters, fake, header, new_epoch=fake))

    def test_older_epoch_rejected(self, scheme):
        keys, epoch0 = self.setup_epoch(scheme)
        new_keys, epoch2 = self.rotated_epoch(scheme, keys, epoch_id=2)
        client = GuestLightClient(scheme, epoch0)
        header2 = self.make_header(epoch2, height=9, epoch_id=2,
                                   epoch_hash=epoch2.canonical_hash())
        client.update(self.signed_update(new_keys, epoch2, header2, new_epoch=epoch2))
        stale = self.make_header(epoch0, height=3, epoch_id=0,
                                 epoch_hash=epoch0.canonical_hash())
        with pytest.raises(ClientError, match="older"):
            client.update(self.signed_update(keys, epoch0, stale))

    def test_epoch_id_mismatch_with_supplied_set_rejected(self, scheme):
        keys, epoch0 = self.setup_epoch(scheme)
        new_keys, epoch2 = self.rotated_epoch(scheme, keys, epoch_id=2)
        client = GuestLightClient(scheme, epoch0)
        header = self.make_header(epoch2, epoch_id=3,
                                  epoch_hash=epoch2.canonical_hash())
        with pytest.raises(ClientError):
            client.update(self.signed_update(new_keys, epoch2, header, new_epoch=epoch2))

    def test_conflicting_headers_freeze_client(self, scheme):
        keys, epoch = self.setup_epoch(scheme)
        client = GuestLightClient(scheme, epoch)
        header_a = self.make_header(epoch, root=Hash.of(b"a"))
        header_b = self.make_header(epoch, root=Hash.of(b"b"))
        client.update(self.signed_update(keys, epoch, header_a))
        with pytest.raises(EvidenceError):
            client.update(self.signed_update(keys, epoch, header_b))
        assert client.frozen

    def test_misbehaviour_submission(self, scheme):
        keys, epoch = self.setup_epoch(scheme)
        client = GuestLightClient(scheme, epoch)
        header_a = self.make_header(epoch, root=Hash.of(b"a"))
        header_b = self.make_header(epoch, root=Hash.of(b"b"))
        client.submit_misbehaviour(
            self.signed_update(keys, epoch, header_a),
            self.signed_update(keys, epoch, header_b),
        )
        assert client.frozen

    def test_misbehaviour_same_header_rejected(self, scheme):
        keys, epoch = self.setup_epoch(scheme)
        client = GuestLightClient(scheme, epoch)
        header = self.make_header(epoch)
        update = self.signed_update(keys, epoch, header)
        with pytest.raises(EvidenceError):
            client.submit_misbehaviour(update, update)
        assert not client.frozen


# ---------------------------------------------------------------------------
# Tendermint light client (what the Guest Contract runs)
# ---------------------------------------------------------------------------

class TestTendermintLightClient:
    def setup_chain(self, scheme, count=10):
        keys = make_keys(scheme, count)
        valset = ValidatorSet(members=tuple((kp.public_key, 100) for kp in keys))
        return keys, valset

    def make_update(self, keys, valset, height=1, root=None, signers=None,
                    chain_id="picasso-1"):
        header = CometHeader(
            chain_id=chain_id,
            height=height,
            time=float(height * 6),
            app_hash=root or Hash.of(b"app"),
            validators_hash=valset.canonical_hash(),
            next_validators_hash=valset.canonical_hash(),
        )
        message = header.sign_bytes()
        chosen = keys if signers is None else signers
        commit = Commit(signatures=tuple(
            (kp.public_key, kp.sign(message)) for kp in chosen
        ))
        return LightClientUpdate(header=header, commit=commit, validator_set=valset)

    def test_honest_update_accepted(self, scheme):
        keys, valset = self.setup_chain(scheme)
        client = TendermintLightClient("picasso-1", valset)
        update = self.make_update(keys, valset)
        client.update(update, scheme)
        assert client.latest_height() == 1
        assert client.consensus_root(1) == update.header.app_hash

    def test_two_thirds_power_boundary(self, scheme):
        keys, valset = self.setup_chain(scheme, count=9)
        client = TendermintLightClient("picasso-1", valset)
        exactly_two_thirds = self.make_update(keys, valset, signers=keys[:6])
        with pytest.raises(ClientError):
            client.update(exactly_two_thirds, scheme)  # needs strictly more
        client.update(self.make_update(keys, valset, signers=keys[:7]), scheme)

    def test_wrong_chain_id_rejected(self, scheme):
        keys, valset = self.setup_chain(scheme)
        client = TendermintLightClient("picasso-1", valset)
        with pytest.raises(ClientError):
            client.update(self.make_update(keys, valset, chain_id="evil-1"), scheme)

    def test_unknown_valset_must_be_supplied(self, scheme):
        """Validator-power churn rotates the set hash: updates for the
        churned set must carry it (and pass the trust rule, which they
        do — same keys, new powers)."""
        keys, valset = self.setup_chain(scheme)
        churned = ValidatorSet(members=(
            (keys[0].public_key, 150),
        ) + valset.members[1:])
        client = TendermintLightClient("picasso-1", valset)
        update = self.make_update(keys, churned)
        stripped = LightClientUpdate(header=update.header, commit=update.commit)
        with pytest.raises(ClientError):
            client.update(stripped, scheme)
        client.update(update, scheme)  # with the set supplied: fine
        assert client.latest_height() == 1

    def test_imposter_valset_rejected_by_trust_rule(self, scheme):
        """An attacker forging a self-consistent header + validator set
        (signed by keys it controls) must fail the >1/3-of-trusted-power
        overlap condition."""
        keys, valset = self.setup_chain(scheme)
        imposter_keys = make_keys(scheme, 10, salt=4)
        imposter = ValidatorSet(members=tuple((kp.public_key, 100) for kp in imposter_keys))
        client = TendermintLightClient("picasso-1", valset)
        forged = self.make_update(imposter_keys, imposter)
        with pytest.raises(ClientError):
            client.update(forged, scheme)

    def test_supplied_set_must_match_header_hash(self, scheme):
        keys, valset = self.setup_chain(scheme)
        other_keys = make_keys(scheme, 10, salt=4)
        other = ValidatorSet(members=tuple((kp.public_key, 100) for kp in other_keys))
        client = TendermintLightClient("picasso-1", valset)
        update = self.make_update(other_keys, other)
        # Header commits to `other`; supplying `valset` must be refused.
        mismatched = LightClientUpdate(header=update.header, commit=update.commit,
                                       validator_set=valset)
        with pytest.raises(ClientError):
            client.update(mismatched, scheme)

    def test_trust_on_first_use_with_empty_genesis(self, scheme):
        keys, valset = self.setup_chain(scheme)
        client = TendermintLightClient("picasso-1", ValidatorSet(members=()))
        client.update(self.make_update(keys, valset), scheme)
        assert client.latest_height() == 1
        # After TOFU the trust rule is armed: an unrelated set now fails.
        imposter_keys = make_keys(scheme, 10, salt=4)
        imposter = ValidatorSet(members=tuple((kp.public_key, 100) for kp in imposter_keys))
        with pytest.raises(ClientError):
            client.update(self.make_update(imposter_keys, imposter, height=2), scheme)

    def test_conflicting_app_hash_freezes(self, scheme):
        keys, valset = self.setup_chain(scheme)
        client = TendermintLightClient("picasso-1", valset)
        client.update(self.make_update(keys, valset, root=Hash.of(b"x")), scheme)
        with pytest.raises(ClientError):
            client.update(self.make_update(keys, valset, root=Hash.of(b"y")), scheme)
        assert client.frozen

    def test_update_serialization_roundtrip(self, scheme):
        keys, valset = self.setup_chain(scheme)
        update = self.make_update(keys, valset)
        restored = LightClientUpdate.from_bytes(update.to_bytes())
        assert restored == update


# ---------------------------------------------------------------------------
# Chunk planning (Fig. 4's transaction counts)
# ---------------------------------------------------------------------------

class TestChunkPlanning:
    def plan_for(self, scheme, validators, participation=1.0, known=frozenset()):
        keys = make_keys(scheme, validators)
        valset = ValidatorSet(members=tuple((kp.public_key, 100) for kp in keys))
        signer_count = round(validators * participation)
        header = CometHeader(
            chain_id="picasso-1", height=10, time=60.0,
            app_hash=Hash.of(b"app"),
            validators_hash=valset.canonical_hash(),
            next_validators_hash=valset.canonical_hash(),
        )
        message = header.sign_bytes()
        commit = Commit(signatures=tuple(
            (kp.public_key, kp.sign(message)) for kp in keys[:signer_count]
        ))
        update = LightClientUpdate(header=header, commit=commit, validator_set=valset)
        return plan_update_chunks(update, known)

    def test_every_chunk_fits_a_transaction(self, scheme):
        plan = self.plan_for(scheme, validators=190)
        for chunk in plan.data_chunks:
            assert len(chunk) <= usable_chunk_bytes() < MAX_TRANSACTION_BYTES

    def test_signature_batches_fit(self, scheme):
        plan = self.plan_for(scheme, validators=190)
        per_tx = signatures_per_transaction(len(plan.sign_message))
        assert all(len(batch) <= per_tx for batch in plan.signature_batches)

    def test_transaction_count_in_paper_range(self, scheme):
        """Fig. 4: ~36.5 transactions per update for a Picasso-sized
        validator set.  The count must emerge from byte arithmetic."""
        plan = self.plan_for(scheme, validators=190, participation=0.85)
        assert 28 <= plan.transaction_count <= 45

    def test_known_valset_shrinks_update(self, scheme):
        keys = make_keys(scheme, 190)
        valset = ValidatorSet(members=tuple((kp.public_key, 100) for kp in keys))
        full = self.plan_for(scheme, validators=190)
        slim = self.plan_for(scheme, validators=190,
                             known=frozenset({bytes(valset.canonical_hash())}))
        assert slim.transaction_count < full.transaction_count

    def test_signature_count_preserved(self, scheme):
        plan = self.plan_for(scheme, validators=100, participation=0.9)
        assert plan.signature_count == 90

    def test_more_validators_more_transactions(self, scheme):
        small = self.plan_for(scheme, validators=50)
        large = self.plan_for(scheme, validators=200)
        assert large.transaction_count > small.transaction_count

    def test_chunks_reassemble(self, scheme):
        plan = self.plan_for(scheme, validators=50)
        staged = b"".join(plan.data_chunks)
        header_len = int.from_bytes(staged[:4], "big")
        assert header_len > 0
        assert len(staged) > header_len + 8
