"""Tests for the Guest Contract driven through real host transactions.

Uses a small deployment (4 homogeneous validators) and exercises Alg. 1
op by op: SendPacket fee collection, GenerateBlock's preconditions
(head finalised, state-changed-or-Δ), Sign's validation chain, staking
ops, and the state-budget guard.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.guest import instructions as ins
from repro.guest.config import GuestConfig
from repro.host.fees import BaseFee
from repro.host.transaction import Instruction, SigVerify, Transaction
from repro.units import sol_to_lamports
from repro.validators.profiles import simple_profiles


@pytest.fixture
def dep():
    return Deployment(DeploymentConfig(
        seed=3,
        guest=GuestConfig(delta_seconds=60.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
    ))


def run_tx(dep, data, payer=None, sig_verifies=(), wait=30.0):
    """Submit one contract instruction and return its receipt."""
    results = []
    tx = Transaction(
        payer=payer or dep.user,
        instructions=(Instruction(
            dep.contract.program_id,
            (dep.contract.state_account, dep.contract.treasury),
            data,
        ),),
        fee_strategy=BaseFee(),
        sig_verifies=tuple(sig_verifies),
    )
    dep.host.submit(tx, on_result=results.append)
    dep.run_for(wait)
    assert results, "transaction never landed"
    return results[0]


class TestSendPacket:
    def test_requires_open_channel(self, dep):
        receipt = run_tx(dep, ins.send_packet("transfer", "channel-9", b"x", 0.0))
        assert not receipt.success
        assert "unknown channel" in receipt.error

    def test_collects_fees(self, dep):
        dep.establish_link()
        treasury_before = dep.host.accounts.balance(dep.contract.treasury)
        payload = b"p" * 100
        receipt = run_tx(dep, ins.send_packet("transfer", "channel-0", payload, 0.0))
        assert receipt.success
        config = dep.contract.config
        expected = config.send_fee_lamports + config.send_fee_per_byte * len(payload)
        assert dep.host.accounts.balance(dep.contract.treasury) - treasury_before == expected

    def test_sequences_and_commitments(self, dep):
        dep.establish_link()
        run_tx(dep, ins.send_packet("transfer", "channel-0", b"a", 0.0))
        run_tx(dep, ins.send_packet("transfer", "channel-0", b"b", 0.0))
        from repro.ibc import commitment as paths
        from repro.ibc.identifiers import ChannelId, PortId
        prefix = paths.commitment_prefix(PortId("transfer"), ChannelId("channel-0"))
        # Whichever are not yet acked still have commitments; at least
        # sequence numbers were assigned in order.
        assert dep.contract.ibc._next_seq_send[(PortId("transfer"), ChannelId("channel-0"))] == 2


class TestGenerateBlock:
    def test_stale_generation_rejected(self, dep):
        dep.run_for(10.0)  # initial state: genesis only, no changes
        receipt = run_tx(dep, ins.generate_block())
        assert not receipt.success
        assert "state unchanged" in receipt.error

    def test_delta_forces_empty_block(self, dep):
        """§III-A: after Δ an empty block may (and does) get generated."""
        dep.run_for(100.0)  # Δ = 60 s in this fixture; cranker fires
        heights = [b.height for b in dep.contract.blocks]
        assert len(heights) >= 2  # genesis + at least one empty block
        head = dep.contract.head
        assert head.header.state_root == dep.contract.blocks[0].header.state_root

    def test_unfinalised_head_blocks_generation(self):
        """Alg. 1 line 14: no new block while the head awaits quorum."""
        dep = Deployment(DeploymentConfig(
            seed=3,
            guest=GuestConfig(delta_seconds=30.0, min_stake_lamports=1),
            profiles=simple_profiles(4, latency_median=500.0, latency_q3=700.0),
        ))
        dep.run_for(120.0)  # Δ passed; a block generates; nobody signed yet
        assert not dep.contract.head.finalised
        receipt = run_tx(dep, ins.generate_block(), wait=20.0)
        assert not receipt.success
        assert "awaits quorum" in receipt.error


class TestSignBlock:
    def make_unsigned_block(self, dep):
        dep.run_for(100.0)  # Δ-triggered block exists
        head = dep.contract.head
        return head

    def test_validators_finalise_via_quorum(self, dep):
        dep.run_for(120.0)
        # The 4 validators (equal stake, quorum > 2/3) signed the empty
        # Δ block; at least 3 signatures were needed.
        head = dep.contract.head
        assert head.finalised
        assert len(head.signers) >= 3

    def test_non_validator_signature_rejected(self, dep):
        dep.run_for(100.0)
        head = dep.contract.head
        outsider = dep.scheme.keypair_from_seed(bytes([9]) * 32)
        message = head.header.sign_message()
        signature = outsider.sign(message)
        receipt = run_tx(
            dep,
            ins.sign_block(head.height, outsider.public_key, signature),
            sig_verifies=[SigVerify(outsider.public_key, message, signature)],
        )
        assert not receipt.success
        assert "not in epoch" in receipt.error

    def test_signature_without_precompile_rejected(self, dep):
        dep.run_for(100.0)
        head = dep.contract.head
        validator = dep.validators[0].keypair
        if validator.public_key in head.signers:
            pytest.skip("validator already signed in this scenario")
        message = head.header.sign_message()
        signature = validator.sign(message)
        receipt = run_tx(
            dep, ins.sign_block(head.height, validator.public_key, signature),
        )  # no SigVerify entry
        assert not receipt.success
        assert "not verified" in receipt.error

    def test_double_sign_rejected(self, dep):
        dep.run_for(120.0)
        head = dep.contract.head
        signer = next(iter(head.signers))
        node = next(v for v in dep.validators if v.keypair.public_key == signer)
        message = head.header.sign_message()
        signature = node.keypair.sign(message)
        receipt = run_tx(
            dep,
            ins.sign_block(head.height, signer, signature),
            sig_verifies=[SigVerify(signer, message, signature)],
        )
        assert not receipt.success
        assert "already signed" in receipt.error

    def test_unknown_height_rejected(self, dep):
        validator = dep.validators[0].keypair
        from repro.guest.block import sign_message
        message = sign_message(99, b"\x00" * 32)
        signature = validator.sign(message)
        receipt = run_tx(
            dep,
            ins.sign_block(99, validator.public_key, signature),
            sig_verifies=[SigVerify(validator.public_key, message, signature)],
        )
        assert not receipt.success
        assert "no guest block" in receipt.error


class TestStakingOps:
    def test_stake_unstake_withdraw_cycle(self):
        config = DeploymentConfig(
            seed=3,
            guest=GuestConfig(delta_seconds=60.0, min_stake_lamports=1,
                              unbonding_seconds=50.0),
            profiles=simple_profiles(4),
        )
        dep = Deployment(config)
        newcomer = dep.scheme.keypair_from_seed(bytes([7]) * 32)
        stake = sol_to_lamports(5.0)

        receipt = run_tx(dep, ins.stake(newcomer.public_key, stake))
        assert receipt.success
        assert dep.contract.staking.stake_of(newcomer.public_key) == stake

        receipt = run_tx(dep, ins.unstake(newcomer.public_key, stake))
        assert receipt.success
        assert dep.contract.staking.stake_of(newcomer.public_key) == 0

        # Too early: the unbonding hold (§IV) blocks the withdrawal.
        receipt = run_tx(dep, ins.withdraw_stake(newcomer.public_key))
        assert not receipt.success
        assert "unbonding hold" in receipt.error

        dep.run_for(60.0)
        balance_before = dep.host.accounts.balance(dep.user)
        receipt = run_tx(dep, ins.withdraw_stake(newcomer.public_key))
        assert receipt.success
        gained = dep.host.accounts.balance(dep.user) - balance_before
        assert gained == stake - receipt.fee_paid

    def test_stake_needs_funds(self, dep):
        from repro.host.accounts import Address
        broke = Address.derive("broke")
        dep.host.airdrop(broke, 10_000)  # fees only
        key = dep.scheme.keypair_from_seed(bytes([8]) * 32)
        receipt = run_tx(dep, ins.stake(key.public_key, sol_to_lamports(1.0)), payer=broke)
        assert not receipt.success


class TestBuffers:
    def test_unknown_buffer_rejected(self, dep):
        receipt = run_tx(dep, ins.recv_exec(12345))
        assert not receipt.success
        assert "unknown buffer" in receipt.error

    def test_incomplete_buffer_rejected(self, dep):
        receipt = run_tx(dep, ins.chunk(1, 0, 3, b"part"))
        assert receipt.success
        receipt = run_tx(dep, ins.recv_exec(1))
        assert not receipt.success
        assert "chunks" in receipt.error

    def test_chunk_total_mismatch_rejected(self, dep):
        assert run_tx(dep, ins.chunk(2, 0, 3, b"a")).success
        receipt = run_tx(dep, ins.chunk(2, 1, 4, b"b"))
        assert not receipt.success
        assert "mismatch" in receipt.error

    def test_bad_chunk_index_rejected(self, dep):
        receipt = run_tx(dep, ins.chunk(3, 5, 3, b"x"))
        assert not receipt.success


class TestMisc:
    def test_unknown_opcode(self, dep):
        receipt = run_tx(dep, bytes([250]))
        assert not receipt.success
        assert "unknown opcode" in receipt.error

    def test_empty_instruction(self, dep):
        receipt = run_tx(dep, b"")
        assert not receipt.success

    def test_double_initialize_rejected(self, dep):
        with pytest.raises(Exception):
            dep.contract.initialize(0, 0.0)

    def test_state_view_serves_proofs_for_old_heights(self, dep):
        dep.establish_link()
        view0 = dep.contract.state_view(0)
        assert view0.root_hash == dep.contract.blocks[0].header.state_root
        head = dep.contract.head
        view = dep.contract.state_view(head.height)
        assert view.root_hash == head.header.state_root
