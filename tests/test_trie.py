"""Unit tests for the sealable Merkle trie (§III-A)."""

import hashlib

import pytest

from repro.crypto.hashing import Hash
from repro.errors import KeyNotFoundError, SealedNodeError, TrieError
from repro.trie import SealableTrie


def key(i: int) -> bytes:
    """A 32-byte pseudo-random key, like the hashed keys the guest uses."""
    return hashlib.sha256(f"key-{i}".encode()).digest()


@pytest.fixture
def trie():
    return SealableTrie()


class TestBasicOperations:
    def test_empty_root_is_zero(self, trie):
        assert trie.root_hash == Hash.zero()
        assert trie.is_empty()

    def test_set_get_roundtrip(self, trie):
        trie.set(key(1), b"value-1")
        assert trie.get(key(1)) == b"value-1"

    def test_get_missing_raises(self, trie):
        trie.set(key(1), b"v")
        with pytest.raises(KeyNotFoundError):
            trie.get(key(2))

    def test_update_changes_value_and_root(self, trie):
        trie.set(key(1), b"old")
        root_old = trie.root_hash
        trie.set(key(1), b"new")
        assert trie.get(key(1)) == b"new"
        assert trie.root_hash != root_old

    def test_many_keys(self, trie):
        for i in range(200):
            trie.set(key(i), f"value-{i}".encode())
        for i in range(200):
            assert trie.get(key(i)) == f"value-{i}".encode()

    def test_insertion_order_independence(self):
        a = SealableTrie()
        b = SealableTrie()
        for i in range(50):
            a.set(key(i), f"v{i}".encode())
        for i in reversed(range(50)):
            b.set(key(i), f"v{i}".encode())
        assert a.root_hash == b.root_hash

    def test_contains(self, trie):
        trie.set(key(1), b"v")
        assert trie.contains(key(1))
        assert not trie.contains(key(2))

    def test_values_must_be_bytes(self, trie):
        with pytest.raises(TrieError):
            trie.set(key(1), "not-bytes")  # type: ignore[arg-type]

    def test_variable_length_keys(self, trie):
        trie.set(b"a", b"1")
        trie.set(b"ab", b"2")
        trie.set(b"abc", b"3")
        assert trie.get(b"a") == b"1"
        assert trie.get(b"ab") == b"2"
        assert trie.get(b"abc") == b"3"

    def test_empty_key(self, trie):
        trie.set(b"", b"root-value")
        assert trie.get(b"") == b"root-value"

    def test_len_and_items(self, trie):
        pairs = {key(i): f"v{i}".encode() for i in range(20)}
        for k, v in pairs.items():
            trie.set(k, v)
        assert len(trie) == 20
        assert dict(trie.items()) == pairs


class TestDelete:
    def test_delete_removes(self, trie):
        trie.set(key(1), b"v")
        trie.delete(key(1))
        assert not trie.contains(key(1))
        assert trie.root_hash == Hash.zero()

    def test_delete_missing_raises(self, trie):
        with pytest.raises(KeyNotFoundError):
            trie.delete(key(1))

    def test_delete_restores_previous_root(self, trie):
        for i in range(30):
            trie.set(key(i), f"v{i}".encode())
        root_before = trie.root_hash
        trie.set(key(99), b"extra")
        trie.delete(key(99))
        assert trie.root_hash == root_before

    def test_delete_interleaved(self, trie):
        for i in range(60):
            trie.set(key(i), f"v{i}".encode())
        for i in range(0, 60, 2):
            trie.delete(key(i))
        for i in range(60):
            if i % 2:
                assert trie.get(key(i)) == f"v{i}".encode()
            else:
                assert not trie.contains(key(i))

    def test_delete_collapses_structure(self, trie):
        # After deleting all but one key, storage should shrink back to a
        # single leaf.
        for i in range(40):
            trie.set(key(i), b"v")
        for i in range(1, 40):
            trie.delete(key(i))
        assert trie.node_count() == 1

    def test_delete_branch_value_key(self, trie):
        trie.set(b"a", b"1")
        trie.set(b"ab", b"2")
        trie.delete(b"a")
        assert not trie.contains(b"a")
        assert trie.get(b"ab") == b"2"


class TestSealing:
    def test_seal_preserves_root(self, trie):
        for i in range(50):
            trie.set(key(i), f"v{i}".encode())
        root = trie.root_hash
        for i in range(25):
            trie.seal(key(i))
        assert trie.root_hash == root

    def test_sealed_key_unreadable(self, trie):
        trie.set(key(1), b"v")
        trie.set(key(2), b"w")
        trie.seal(key(1))
        with pytest.raises(SealedNodeError):
            trie.get(key(1))
        assert trie.get(key(2)) == b"w"

    def test_sealed_key_cannot_be_rewritten(self, trie):
        """The double-delivery guard: a sealed packet receipt can never
        be re-inserted."""
        trie.set(key(1), b"receipt")
        trie.seal(key(1))
        with pytest.raises(SealedNodeError):
            trie.set(key(1), b"receipt-again")

    def test_seal_missing_key_raises(self, trie):
        trie.set(key(1), b"v")
        with pytest.raises(KeyNotFoundError):
            trie.seal(key(2))

    def test_double_seal_raises(self, trie):
        trie.set(key(1), b"v")
        trie.seal(key(1))
        with pytest.raises(SealedNodeError):
            trie.seal(key(1))

    def test_seal_all_bounds_storage(self, trie):
        """§III-A / §V-D: sealing everything collapses storage to stubs."""
        for i in range(100):
            trie.set(key(i), f"v{i}".encode())
        for i in range(100):
            trie.seal(key(i))
        # All content sealed away; only the root stub remains.
        assert trie.node_count() == 0
        assert trie.storage_bytes() == 0

    def test_seal_reduces_live_nodes_monotonically(self, trie):
        for i in range(64):
            trie.set(key(i), b"v")
        counts = [trie.node_count()]
        for i in range(64):
            trie.seal(key(i))
            counts.append(trie.node_count())
        assert all(b <= a for a, b in zip(counts, counts[1:]))
        assert counts[-1] == 0

    def test_sealed_storage_stays_bounded_under_churn(self, trie):
        """The headline property: state size depends on *live* entries
        only, not on how many packets have ever been processed.

        Uses monotone sequenced keys (prefix + big-endian counter), the
        scheme the Guest Contract seals under: fresh keys then never
        descend into fully sealed subtrees.
        """
        prefix = hashlib.sha256(b"channel-0").digest()[:24]
        seq_key = lambda i: prefix + i.to_bytes(8, "big")
        live_window = 32
        high_water = 0
        for i in range(500):
            trie.set(seq_key(i), b"packet-receipt")
            if i >= live_window:
                trie.seal(seq_key(i - live_window))
            high_water = max(high_water, trie.node_count())
        # Live nodes should be proportional to the window, far below the
        # 500 inserts ever made.
        assert trie.node_count() <= 4 * live_window
        assert high_water <= 6 * live_window

    def test_fresh_key_into_fully_sealed_prefix_inserts(self, trie):
        """Sealed branch stubs keep their slot occupancy, so a *new* key
        that lands in an empty slot of a fully sealed branch inserts
        cleanly — and the incremental root matches a fresh rebuild of
        the same mapping.  Only keys that descend into *pruned* data
        (an occupied slot, or an overwrite of a sealed key) raise."""
        trie.set(b"\x00" * 32, b"a")
        trie.set(b"\x00" * 31 + b"\x01", b"b")
        trie.seal(b"\x00" * 32)
        trie.seal(b"\x00" * 31 + b"\x01")
        trie.set(b"\x00" * 31 + b"\x02", b"c")
        fresh = SealableTrie()
        fresh.set(b"\x00" * 32, b"a")
        fresh.set(b"\x00" * 31 + b"\x01", b"b")
        fresh.set(b"\x00" * 31 + b"\x02", b"c")
        assert trie.root_hash == fresh.root_hash
        # Pruned data is still unreachable: overwriting a sealed key raises.
        with pytest.raises(SealedNodeError):
            trie.set(b"\x00" * 32, b"a2")

    def test_seal_then_proof_of_sibling_still_works(self, trie):
        from repro.trie import verify_membership
        for i in range(20):
            trie.set(key(i), f"v{i}".encode())
        root = trie.root_hash
        trie.seal(key(3))
        proof = trie.prove(key(7))
        assert verify_membership(root, proof)
        assert verify_membership(trie.root_hash, proof)

    def test_cannot_prove_sealed_entry(self, trie):
        trie.set(key(1), b"v")
        trie.set(key(2), b"w")
        trie.seal(key(1))
        with pytest.raises(SealedNodeError):
            trie.prove(key(1))


class TestStorageAccounting:
    def test_empty_trie_zero_storage(self, trie):
        assert trie.node_count() == 0
        assert trie.storage_bytes() == 0

    def test_storage_grows_with_inserts(self, trie):
        sizes = []
        for i in range(50):
            trie.set(key(i), b"x" * 32)
            sizes.append(trie.storage_bytes())
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_sealed_count(self, trie):
        for i in range(10):
            trie.set(key(i), b"v")
        assert trie.sealed_count() == 0
        trie.seal(key(0))
        assert trie.sealed_count() >= 1
