"""The sharded cluster runner: identity with serial, crash recovery.

The contract under test: however a sweep is sharded — and however many
times its workers are killed and respawned mid-task — the merged
records are byte-identical to a serial single-process run.  The
mid-task resume path goes through a full :mod:`repro.checkpoint` world
restore, so these are also end-to-end tests of checkpointing under a
process boundary.
"""

import json
import os

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterError,
    ClusterRunner,
    WorkerFault,
    run_cluster_sweep,
    throughput_tasks,
)
from repro.experiments.throughput import (
    ThroughputPointConfig,
    run_throughput_sweep,
    sweep_point_configs,
)

#: One small two-point sweep shared by the identity/crash tests — large
#: enough to cross several checkpoint slices, small enough for CI.
SWEEP = dict(
    seed=11,
    offered_loads=(4.0,),
    batch_sizes=(1, 16),
    duration=30.0,
    base=ThroughputPointConfig(duration=30.0, drain_seconds=600.0),
)


def canonical(points):
    return json.dumps(points, sort_keys=True)


@pytest.fixture(scope="module")
def serial_points():
    return run_throughput_sweep(**SWEEP)["points"]


class TestClusterIdentity:
    def test_sharded_sweep_matches_serial(self, serial_points, tmp_path):
        results = run_cluster_sweep(**SWEEP, cluster=ClusterConfig(
            workers=2, run_dir=str(tmp_path / "run"),
            checkpoint_every_seconds=200.0,
        ))
        assert canonical(results["points"]) == canonical(serial_points)
        assert results["cluster"]["workers"] == 2

    def test_resume_skips_finished_tasks(self, serial_points, tmp_path):
        run_dir = str(tmp_path / "run")
        cluster = ClusterConfig(workers=2, run_dir=run_dir,
                                checkpoint_every_seconds=0.0)
        first = run_cluster_sweep(**SWEEP, cluster=cluster)
        runner = ClusterRunner(ClusterConfig(
            workers=2, run_dir=run_dir, checkpoint_every_seconds=0.0))
        records = runner.run_tasks(throughput_tasks(sweep_point_configs(**SWEEP)))
        assert canonical(records) == canonical(first["points"])
        # Nothing re-ran: every task was served from its result file.
        kinds = {event[1] for event in runner.events}
        assert "cached" in kinds
        assert "start" not in kinds

    def test_run_dir_refuses_a_different_sweep(self, tmp_path):
        run_dir = str(tmp_path / "run")
        tasks = throughput_tasks(sweep_point_configs(**SWEEP))
        ClusterRunner(ClusterConfig(workers=2, run_dir=run_dir))._prepare_run_dir(tasks)
        other = throughput_tasks(sweep_point_configs(**{**SWEEP, "seed": 99}))
        with pytest.raises(ClusterError, match="different"):
            ClusterRunner(ClusterConfig(workers=2, run_dir=run_dir))._prepare_run_dir(other)

    def test_task_indices_must_be_canonical(self, tmp_path):
        runner = ClusterRunner(ClusterConfig(workers=1,
                                             run_dir=str(tmp_path / "run")))
        with pytest.raises(ClusterError, match="indices"):
            runner.run_tasks([{"index": 3, "kind": "throughput-point",
                               "config": {}}])


class TestCrashRecovery:
    def test_sigkilled_worker_resumes_mid_task(self, serial_points, tmp_path):
        """Kill one of four workers two slices into its first task —
        right after a checkpoint, the worst moment — and require the
        merged results to be byte-identical to the serial run."""
        runner = ClusterRunner(ClusterConfig(
            workers=4, run_dir=str(tmp_path / "run"),
            checkpoint_every_seconds=100.0,
            faults=(WorkerFault(worker_index=0, after_points=0,
                                mid_task_slices=2),),
        ))
        records = runner.run_tasks(throughput_tasks(sweep_point_configs(**SWEEP)))
        assert canonical(records) == canonical(serial_points)
        kinds = {event[1] for event in runner.events}
        assert "respawn" in kinds  # the worker really died...
        assert "resumed" in kinds  # ...and really restored a checkpoint

    def test_killed_between_tasks_recovers_too(self, serial_points, tmp_path):
        runner = ClusterRunner(ClusterConfig(
            workers=2, run_dir=str(tmp_path / "run"),
            checkpoint_every_seconds=0.0,
            faults=(WorkerFault(worker_index=1, after_points=0),),
        ))
        records = runner.run_tasks(throughput_tasks(sweep_point_configs(**SWEEP)))
        assert canonical(records) == canonical(serial_points)
        kinds = {event[1] for event in runner.events}
        assert "respawn" in kinds

    def test_unrecoverable_worker_aborts_the_run(self, tmp_path):
        # max_restarts=0: the first death is final.  The fault stays
        # armed only for the first incarnation, but with no respawn
        # budget the runner must give up rather than spin.
        runner = ClusterRunner(ClusterConfig(
            workers=2, run_dir=str(tmp_path / "run"),
            checkpoint_every_seconds=0.0, max_restarts=0,
            faults=(WorkerFault(worker_index=0, after_points=0),),
        ))
        with pytest.raises(ClusterError, match="died"):
            runner.run_tasks(throughput_tasks(sweep_point_configs(**SWEEP)))


class TestMergedTraces:
    def test_collect_traces_merges_without_touching_rows(self, serial_points,
                                                         tmp_path):
        results = run_cluster_sweep(**SWEEP, cluster=ClusterConfig(
            workers=2, run_dir=str(tmp_path / "run"),
            checkpoint_every_seconds=0.0, collect_traces=True,
        ))
        assert canonical(results["points"]) == canonical(serial_points)
        merged = results["merged_trace"]
        sent = merged["counters"]["workload.packets.sent"]
        assert sent == sum(point["sent"] for point in results["points"])


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup needs at least 4 cores")
class TestSpeedup:
    def test_four_workers_beat_serial(self, tmp_path):
        import time

        kw = dict(
            seed=12,
            offered_loads=(4.0, 8.0),
            batch_sizes=(1, 16),
            duration=40.0,
            base=ThroughputPointConfig(duration=40.0, drain_seconds=600.0),
        )
        t0 = time.monotonic()
        serial = run_throughput_sweep(**kw)
        serial_s = time.monotonic() - t0
        t1 = time.monotonic()
        clustered = run_cluster_sweep(**kw, cluster=ClusterConfig(
            workers=4, run_dir=str(tmp_path / "run"),
            checkpoint_every_seconds=0.0,
        ))
        cluster_s = time.monotonic() - t1
        assert canonical(clustered["points"]) == canonical(serial["points"])
        # Four workers on four points: demand a 2.5x wall-clock win
        # (spawn + import overhead eats the rest).
        assert cluster_s < serial_s / 2.5, (
            f"cluster {cluster_s:.1f}s vs serial {serial_s:.1f}s")
