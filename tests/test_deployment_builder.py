"""Tests for the deployment builder's wiring invariants and the CLI."""

import pytest

from repro import Deployment, DeploymentConfig, build
from repro.guest.config import GuestConfig
from repro.units import rent_exempt_deposit, sol_to_lamports
from repro.validators.profiles import simple_profiles


@pytest.fixture(scope="module")
def dep():
    return Deployment(DeploymentConfig(
        seed=131,
        guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
    ))


class TestDeploymentWiring:
    def test_state_account_allocated_with_deposit(self, dep):
        account = dep.host.accounts.get(dep.contract.state_account)
        assert account is not None
        assert account.size == dep.config.guest.state_account_bytes
        assert account.lamports == rent_exempt_deposit(account.size)
        assert account.owner == dep.contract.program_id

    def test_genesis_block_finalised(self, dep):
        genesis = dep.contract.blocks[0]
        assert genesis.height == 0
        assert genesis.finalised
        assert dep.contract.initialized

    def test_epoch_zero_from_genesis_bonds(self, dep):
        epoch = dep.contract.epochs[0]
        assert len(epoch) == 4
        for node in dep.validators:
            assert epoch.is_validator(node.keypair.public_key)

    def test_treasury_covers_bonded_stake(self, dep):
        bonded = sum(
            dep.contract.staking.stake_of(node.keypair.public_key)
            for node in dep.validators
        )
        assert dep.host.accounts.balance(dep.contract.treasury) >= bonded

    def test_guest_client_tracks_epoch_zero(self, dep):
        assert dep.guest_client.epoch.epoch_id == 0
        assert dep.guest_client.epoch.canonical_hash() == (
            dep.contract.epochs[0].canonical_hash()
        )

    def test_actors_funded(self, dep):
        for payer in (dep.relayer_payer, dep.cranker_payer, dep.user):
            assert dep.host.accounts.balance(payer) > sol_to_lamports(1.0)

    def test_build_helper_defaults(self):
        deployment = build()
        assert len(deployment.validators) == 4

    def test_validator_keypair_lookup(self, dep):
        keypair = dep.validator_keypair(1)
        assert keypair is dep.validators[0].keypair
        with pytest.raises(KeyError):
            dep.validator_keypair(99)

    def test_establish_link_times_out_cleanly(self):
        """With silent validators nothing can finalise: establish_link
        must fail loudly rather than hang."""
        import dataclasses
        from repro.errors import SimulationError
        profiles = [dataclasses.replace(p, silent=True) for p in simple_profiles(3)]
        deployment = Deployment(DeploymentConfig(
            seed=132,
            guest=GuestConfig(delta_seconds=60.0, min_stake_lamports=1),
            profiles=profiles,
        ))
        with pytest.raises(SimulationError):
            deployment.establish_link(max_seconds=300.0)


class TestCli:
    def test_storage_target(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "Storage costs" in out
        assert "72 thousand" in out

    def test_unknown_target_rejected(self):
        from repro.experiments.__main__ import main
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_short_evaluation_target(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["--duration-hours", "0.5", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "priority-fee cluster" in out
