"""Soak test: a 10k-packet multi-channel run stays conserved and clean.

The long-haul companion to the throughput benchmark: drive ten thousand
ICS-20 transfers over several channels through a batching relayer, then
audit the wreckage — every packet delivered exactly once, token value
conserved between counterparty escrow and guest vouchers, guest block
heights strictly monotone, and no tracing span left open (a leaked span
means some relayer flow started and never finished).
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.ibc.identifiers import PortId
from repro.relayer.relayer import RelayerConfig
from repro.validators.profiles import simple_profiles
from repro.workload import WorkloadEngine, WorkloadSpec

CHANNELS = 3
OFFERED_PPS = 40.0
DURATION = 250.0  # 40 pps * 250 s = 10_000 packets
AMOUNT = 3


@pytest.fixture(scope="module")
def soak():
    dep = Deployment(DeploymentConfig(
        seed=29,
        guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
        relayer=RelayerConfig(batch_max_packets=32, batch_flush_seconds=2.0),
        profiles=simple_profiles(4),
        tracing=True,
    ))
    channels = [dep.establish_link()]
    for _ in range(CHANNELS - 1):
        opened: dict = {}
        dep.relayer.open_channel(
            PortId("transfer"), PortId("transfer"),
            lambda g, c: opened.update(guest=g, cp=c),
        )
        deadline = dep.sim.now + 3_600.0
        while "cp" not in opened and dep.sim.now < deadline:
            dep.sim.step()
        assert "cp" in opened, "extra channel failed to open"
        channels.append((opened["guest"], opened["cp"]))

    engine = WorkloadEngine(dep, channels, WorkloadSpec(
        mode="open-constant",
        offered_pps=OFFERED_PPS,
        duration=DURATION,
        amount=AMOUNT,
        drain_seconds=1_800.0,
    ))
    report = engine.run()
    return dep, channels, engine, report


def test_every_packet_delivered_exactly_once(soak):
    dep, channels, engine, report = soak
    assert report.sent >= 10_000
    assert report.send_failures == 0
    assert report.committed == report.sent
    assert report.delivered == report.sent
    assert engine.outstanding() == 0
    # The run genuinely exercised every channel.
    assert len(channels) == CHANNELS
    received = dep.trace_report()
    counters = received.counters
    counters = counters() if callable(counters) else counters
    assert counters["workload.packets.delivered"] == report.sent


def test_escrow_matches_voucher_supply(soak):
    """Value conservation: every token locked in a counterparty escrow
    circulates as exactly one guest voucher, channel by channel."""
    dep, channels, engine, report = soak
    spec = engine.spec
    total_escrowed = 0
    for guest_chan, cp_chan in channels:
        escrow = dep.counterparty.transfer.escrow_address(cp_chan)
        escrowed = dep.counterparty.bank.balance(escrow, spec.denom)
        voucher = dep.contract.transfer.voucher_denom(guest_chan, spec.denom)
        assert dep.contract.bank.total_supply(voucher) == escrowed
        total_escrowed += escrowed
    assert total_escrowed == report.sent * AMOUNT
    # Nothing minted out of thin air: counterparty supply is unchanged
    # by relaying (escrow just moved it), guest supply equals escrow.
    minted = sum(
        amount for (_, denom), amount
        in dep.counterparty.bank._balances.items() if denom == spec.denom
    )
    assert dep.counterparty.bank.total_supply(spec.denom) == minted


def test_guest_heights_strictly_monotone(soak):
    dep, _, _, _ = soak
    heights = [block.height for block in dep.contract.blocks]
    assert len(heights) >= 2
    assert all(b > a for a, b in zip(heights, heights[1:]))
    assert dep.contract.head.finalised


def test_no_leaked_spans(soak):
    """Every begin()-span ended: no relayer flow, LC update, delivery
    bundle or host submission is left dangling after the drain."""
    dep, _, _, _ = soak
    leaked = dep.trace_report().open_spans()
    assert leaked == [], [s.name for s in leaked]
