"""N-guest conservation property: a seeded 2 000-packet soak across a
two-guest fabric with a sibling link, short-timeout transfers, and a
chaos plan (sibling-relayer crash, cranker crash, host slot stall).

The property: whatever mix of deliveries, expiries, and crash-window
losses the seed produces, every base denom's non-escrow supply is
conserved across all four ledgers, and every escrowed token circulates
as exactly one voucher on the far side of its channel.
"""

import random

import pytest

from repro.chaos import ChaosInjector, FaultPlan
from repro.fabric import (
    CounterpartySpec,
    GuestSpec,
    LinkSpec,
    TopologyConfig,
    build_fabric,
)
from repro.guest.config import GuestConfig
from repro.ibc.identifiers import ChannelId, PortId

SEED = 2024
TOTAL_PACKETS = 2_000
SEND_WINDOW = 600.0       # sends spread over this many simulated seconds
SHORT_TIMEOUT = 180.0     # sibling sends that may expire in the crash
MAX_DRAIN = 14_400.0


def _topology() -> TopologyConfig:
    heartbeat = GuestConfig(delta_seconds=240.0)
    return TopologyConfig(
        guests=(GuestSpec("g0", config=heartbeat),
                GuestSpec("g1", config=heartbeat)),
        counterparties=(CounterpartySpec("hub"),),
        links=(LinkSpec("hub", "g0"), LinkSpec("hub", "g1"),
               LinkSpec("g0", "g1")),
        seed=SEED,
    )


@pytest.fixture(scope="module")
def soak():
    dep = build_fabric(_topology())
    hub = dep.counterparties["hub"]
    hub.bank.mint("alice", "uatom", 10_000_000)
    for name in ("g0", "g1"):
        dep.guests[name].contract.bank.mint(
            str(dep.user[name]), f"stone{name[-1]}", 1_000_000)
    checker = dep.conservation_checker()

    sibling_link = dep.link_between("g0", "g1")
    dep.relayer = sibling_link.relayer  # chaos targets the sibling hop
    plan = (FaultPlan(label="fabric-soak")
            .add("relayer_crash", at=200.0, duration=400.0)
            .add("cranker_crash", at=300.0, duration=200.0)
            .add("host_slot_stall", at=450.0, duration=60.0))
    ChaosInjector(dep, plan).arm()

    rng = random.Random(SEED)
    sent = {"cp_to_guest": {"g0": 0, "g1": 0},
            "guest_to_cp": {"g0": 0, "g1": 0},
            "sibling": {"g0": 0, "g1": 0},
            "count": 0}

    def send_cp_to_guest(guest: str, amount: int) -> None:
        link = dep.link_between(guest, "hub")
        chan = ChannelId(link.channels["hub"])
        user = str(dep.user[guest])

        def submit(chan=chan, user=user, amount=amount):
            payload = hub.transfer.make_payload(
                chan, "uatom", amount, sender="alice", receiver=user)
            return hub.ibc.send_packet(PortId("transfer"), chan,
                                       payload, 0.0)
        hub.submit(submit)
        sent["cp_to_guest"][guest] += amount

    def send_guest_to_cp(guest: str, amount: int) -> None:
        link = dep.link_between(guest, "hub")
        chan = ChannelId(link.channels[guest])
        contract = dep.guests[guest].contract
        payload = contract.transfer.make_payload(
            chan, f"stone{guest[-1]}", amount,
            sender=str(dep.user[guest]), receiver="collector")
        dep.user_api[guest].send_packet("transfer", str(chan), payload, 0.0)
        sent["guest_to_cp"][guest] += amount

    def send_sibling(src: str, amount: int, short: bool) -> None:
        dst = "g1" if src == "g0" else "g0"
        chan = ChannelId(sibling_link.channels[src])
        contract = dep.guests[src].contract
        payload = contract.transfer.make_payload(
            chan, f"stone{src[-1]}", amount,
            sender=str(dep.user[src]), receiver=f"{dst}-hodler")
        timeout = dep.sim.now + SHORT_TIMEOUT if short else 0.0
        dep.user_api[src].send_packet("transfer", str(chan),
                                      payload, timeout)
        sent["sibling"][src] += amount

    def one_send() -> None:
        sent["count"] += 1
        amount = rng.randint(1, 5)
        fate = rng.random()
        guest = rng.choice(("g0", "g1"))
        if fate < 0.50:
            send_cp_to_guest(guest, amount)
        elif fate < 0.75:
            send_guest_to_cp(guest, amount)
        else:
            send_sibling(guest, amount, short=rng.random() < 0.5)

    for _ in range(TOTAL_PACKETS):
        dep.sim.schedule(rng.uniform(0.0, SEND_WINDOW), one_send)

    # Drain until the uatom flood fully lands and the sibling relayer
    # has no outstanding sends left (delivered, or cancelled on-chain).
    relayer = sibling_link.relayer
    deadline = dep.sim.now + MAX_DRAIN
    while dep.sim.now < deadline:
        dep.run_for(300.0)
        vouchers_ok = all(
            _uatom_vouchers(dep, name) == sent["cp_to_guest"][name]
            for name in ("g0", "g1"))
        outstanding = sum(len(o) for o in relayer._outstanding.values())
        if vouchers_ok and outstanding == 0 and sent["count"] == TOTAL_PACKETS:
            break
    dep.run_for(300.0)  # let trailing acks/confirms seal
    return dep, checker, sent, relayer


def _uatom_vouchers(dep, guest: str) -> int:
    link = dep.link_between(guest, "hub")
    contract = dep.guests[guest].contract
    return contract.bank.total_supply(
        f"transfer/{link.channels[guest]}/uatom")


class TestSoakConservation:
    def test_all_packets_sent(self, soak):
        dep, checker, sent, relayer = soak
        assert sent["count"] == TOTAL_PACKETS

    def test_chaos_actually_bit(self, soak):
        """The plan fired, and at least one short-timeout sibling send
        expired during the outage and was cancelled on-chain."""
        dep, checker, sent, relayer = soak
        assert relayer.metrics.crashes == 1
        assert relayer.metrics.timeouts_cancelled >= 1
        assert relayer.metrics.packets_delivered >= 1

    def test_conservation_across_all_ledgers(self, soak):
        dep, checker, sent, relayer = soak
        report = checker.check()
        assert report.ok, report.failures

    def test_escrow_matches_voucher_supply_every_channel(self, soak):
        """Exactly-once in ledger form: each escrowed token circulates
        as exactly one voucher on the far end — a lost refund or a
        doubled mint would skew one side."""
        dep, checker, sent, relayer = soak
        hub = dep.counterparties["hub"]
        for name in ("g0", "g1"):
            link = dep.link_between(name, "hub")
            contract = dep.guests[name].contract
            # hub escrow (uatom) == guest voucher supply.
            escrow = hub.transfer.escrow_address(
                ChannelId(link.channels["hub"]))
            assert hub.bank.balance(escrow, "uatom") == \
                _uatom_vouchers(dep, name)
            # guest escrow (native stone) == hub voucher supply.
            stone = f"stone{name[-1]}"
            guest_escrow = contract.transfer.escrow_address(
                ChannelId(link.channels[name]))
            hub_voucher = f"transfer/{link.channels['hub']}/{stone}"
            assert contract.bank.balance(guest_escrow, stone) == \
                hub.bank.total_supply(hub_voucher)
        # The sibling channel, both directions.
        sibling = dep.link_between("g0", "g1")
        for src, dst in (("g0", "g1"), ("g1", "g0")):
            stone = f"stone{src[-1]}"
            src_c = dep.guests[src].contract
            dst_c = dep.guests[dst].contract
            escrow = src_c.transfer.escrow_address(
                ChannelId(sibling.channels[src]))
            voucher = f"transfer/{sibling.channels[dst]}/{stone}"
            assert src_c.bank.balance(escrow, stone) == \
                dst_c.bank.total_supply(voucher)

    def test_all_flood_transfers_delivered(self, soak):
        """timeout=0 sends can be delayed by the chaos but never lost:
        every cp→guest token arrived despite the crash windows."""
        dep, checker, sent, relayer = soak
        for name in ("g0", "g1"):
            assert _uatom_vouchers(dep, name) == sent["cp_to_guest"][name]
        hub = dep.counterparties["hub"]
        collected = sum(
            hub.bank.balance("collector",
                             f"transfer/{dep.link_between(n, 'hub').channels['hub']}/stone{n[-1]}")
            for n in ("g0", "g1"))
        assert collected == sum(sent["guest_to_cp"].values())

    def test_sibling_refunds_landed_exactly_once(self, soak):
        """Per guest: user balance + both escrows == the initial mint.
        A double refund would overshoot, a lost one undershoot."""
        dep, checker, sent, relayer = soak
        sibling = dep.link_between("g0", "g1")
        for name in ("g0", "g1"):
            stone = f"stone{name[-1]}"
            contract = dep.guests[name].contract
            cp_link = dep.link_between(name, "hub")
            held = contract.bank.balance(str(dep.user[name]), stone)
            cp_escrow = contract.bank.balance(
                contract.transfer.escrow_address(
                    ChannelId(cp_link.channels[name])), stone)
            sib_escrow = contract.bank.balance(
                contract.transfer.escrow_address(
                    ChannelId(sibling.channels[name])), stone)
            assert held + cp_escrow + sib_escrow == 1_000_000

    def test_guest_heights_strictly_monotone(self, soak):
        dep, checker, sent, relayer = soak
        for guest in dep.guests.values():
            heights = [b.height for b in guest.contract.blocks]
            assert all(b > a for a, b in zip(heights, heights[1:]))
            assert guest.contract.head.finalised
