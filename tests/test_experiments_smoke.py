"""Smoke tests for the experiment harness itself (tiny configurations).

The benchmarks run the full-size experiments; these tests make the
harness code part of the ordinary suite with small/fast parameters, and
pin the properties the renderers rely on (fields present, counts sane,
determinism under a seed).
"""

import pytest

from repro.experiments import report
from repro.experiments.ablations import (
    adaptive_fee_comparison,
    delta_sweep,
    fee_strategy_tradeoff,
    quorum_sweep,
)
from repro.experiments.blocks import BlockIntervalConfig, BlockIntervalRun
from repro.experiments.evaluation import EvaluationConfig, EvaluationRun
from repro.experiments.lightclient_cost import light_client_cost_comparison
from repro.experiments.storage import measure_capacity, sealing_ablation


@pytest.fixture(scope="module")
def small_evaluation():
    return EvaluationRun(EvaluationConfig(
        seed=123,
        duration=2 * 3600.0,
        send_mean_gap=300.0,
        cp_send_mean_gap=600.0,
        outage_seconds=300.0,
    )).execute()


class TestEvaluationHarness:
    def test_sends_recorded_with_latency_and_cost(self, small_evaluation):
        assert len(small_evaluation.sends) >= 10
        assert small_evaluation.send_latencies()
        assert small_evaluation.send_costs_usd()
        for record in small_evaluation.sends:
            if record.latency is not None:
                assert record.latency > 0

    def test_both_strategies_present(self, small_evaluation):
        strategies = {r.strategy for r in small_evaluation.sends}
        assert strategies == {"priority", "bundle"}

    def test_lc_updates_have_consistent_fields(self, small_evaluation):
        for update in small_evaluation.lc_updates:
            assert update.transaction_count >= 3
            assert update.latency >= 0
            if update.success:
                assert update.signature_count > 0

    def test_validator_rows_cover_the_set(self, small_evaluation):
        assert len(small_evaluation.validator_rows) == 17
        assert small_evaluation.silent_validators == 7

    def test_renderers_produce_text(self, small_evaluation):
        for renderer in (report.render_fig2, report.render_fig3,
                         report.render_fig4, report.render_fig5,
                         report.render_receive_packet, report.render_table1):
            text = renderer(small_evaluation)
            assert isinstance(text, str) and len(text) > 40

    def test_deterministic_under_seed(self):
        def run():
            results = EvaluationRun(EvaluationConfig(
                seed=321, duration=1_800.0, send_mean_gap=200.0,
                cp_send_mean_gap=900.0, outage_seconds=120.0,
            )).execute()
            return (len(results.sends),
                    tuple(round(l, 6) for l in results.send_latencies()),
                    tuple(u.transaction_count for u in results.lc_updates))

        assert run() == run()


class TestBlockIntervalHarness:
    def test_small_run(self):
        results = BlockIntervalRun(BlockIntervalConfig(
            seed=7, duration=6 * 3600.0, delta_seconds=900.0,
            send_mean_gap=650.0, outage_seconds=600.0,
        )).execute()
        assert results.total_blocks > 5
        assert len(results.intervals) == results.total_blocks - 1
        # With gap 650 s and Delta 900 s, both regimes appear.
        assert results.at_delta_cutoff >= 1
        assert any(i < 900.0 for i in results.intervals)
        text = report.render_fig6(results)
        assert "cut-off" in text


class TestThroughputHarness:
    def test_point_record_is_json_ready(self):
        from repro.experiments.throughput import (
            ThroughputPointConfig, run_throughput_point,
        )
        record = run_throughput_point(ThroughputPointConfig(
            seed=5, offered_pps=2.0, duration=20.0, drain_seconds=600.0,
            channels=1, batch_max_packets=4,
        ))
        assert record["sent"] > 0
        assert record["delivered"] == record["sent"]
        assert record["outstanding"] == 0
        assert record["sustained_pps"] > 0
        assert record["latency_p50_s"] <= record["latency_p95_s"]
        import json
        json.dumps(record)  # the benchmark writes this verbatim

    def test_check_smoke_flags_regressions(self):
        from repro.experiments.throughput import check_smoke
        point = {
            "offered_pps": 8.0, "batch_max_packets": 1, "sent": 10,
            "committed": 10, "delivered": 10, "send_failures": 0,
            "sustained_pps": 5.0, "latency_p50_s": 1.0,
            "latency_p95_s": 2.0, "latency_p99_s": 3.0,
            "relayer_fee_lamports": 1_000, "fee_lamports_per_packet": 100.0,
        }
        batched = dict(point, batch_max_packets=16, sustained_pps=10.0,
                       fee_lamports_per_packet=50.0)
        results = {"offered_loads": [8.0], "batch_sizes": [1, 16],
                   "points": [point, batched]}
        assert check_smoke(results) == []
        slow = dict(batched, sustained_pps=5.5)
        assert check_smoke({**results, "points": [point, slow]})
        undelivered = dict(point, delivered=9)
        assert check_smoke({**results, "points": [undelivered, batched]})
        assert check_smoke({**results,
                            "points": [point, {"offered_pps": 8.0}]})


class TestStorageHarness:
    def test_capacity_fields(self):
        capacity = measure_capacity(sample=2_000)
        assert capacity.pairs_in_account > 50_000
        assert 50 < capacity.bytes_per_pair < 200
        assert capacity.deposit_usd > 10_000

    def test_ablation_trajectories_aligned(self):
        results = sealing_ablation(packets=600, live_window=32, sample_every=50)
        assert len(results.sealed_bytes_trajectory) == len(results.plain_bytes_trajectory)
        assert results.growth_ratio > 3


class TestAblationHarnesses:
    def test_delta_sweep_small(self):
        points = delta_sweep(deltas=(300.0, 1_200.0), duration=2 * 3600.0,
                             send_mean_gap=1_500.0)
        assert len(points) == 2
        small, large = points
        assert small.blocks >= large.blocks

    def test_fee_tradeoff_small(self):
        points = fee_strategy_tradeoff(congestion=0.6, samples=40)
        names = {p.name for p in points}
        assert names == {"base", "priority", "bundle"}

    def test_adaptive_fee_small(self):
        points = adaptive_fee_comparison(congestion_levels=(0.2,), samples=30)
        (point,) = points
        assert point.adaptive_cost_usd < point.fixed_cost_usd

    def test_quorum_sweep_small(self):
        from fractions import Fraction
        points = quorum_sweep(fractions=(Fraction(2, 3),), validators=6,
                              duration=1_800.0)
        (point,) = points
        assert point.finalisation_latency.count > 2

    def test_lightclient_cost_small(self):
        guest, tendermint = light_client_cost_comparison(
            guest_validators=10, tendermint_validators=60, headers=5,
        )
        assert guest.signatures_verified == 10
        assert tendermint.signatures_verified == 60
        assert guest.update_bytes < tendermint.update_bytes
