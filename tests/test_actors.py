"""Unit tests for the off-chain actors: validators, cranker, relayer
internals, gossip and the counterparty chain model."""

import pytest

from repro import Deployment, DeploymentConfig
from repro.counterparty.chain import CounterpartyChain, CounterpartyConfig
from repro.crypto.simsig import SimSigScheme
from repro.guest.config import GuestConfig
from repro.ibc.host import _SequenceTracker
from repro.sim import Simulation
from repro.sim.gossip import GossipNetwork
from repro.validators.profiles import (
    TABLE_I_PROFILES,
    deployment_profiles,
    simple_profiles,
)


class TestSequenceTracker:
    def test_in_order_sealing_lags_by_two(self):
        tracker = _SequenceTracker()
        assert tracker.record(0) == []
        assert tracker.record(1) == [0]
        assert tracker.record(2) == [1]
        assert tracker.record(3) == [2]

    def test_out_of_order_catches_up(self):
        tracker = _SequenceTracker()
        assert tracker.record(0) == []
        assert tracker.record(2) == []      # gap at 1
        assert tracker.record(3) == []      # still gapped
        assert tracker.record(1) == [0, 1, 2]  # gap filled: 0..2 sealable

    def test_consume_false_defers(self):
        tracker = _SequenceTracker()
        tracker.record(0, consume=False)
        sealable = tracker.record(1, consume=False)
        assert sealable == [0]
        assert 0 in tracker.unsealed  # still tracked for later sealing

    def test_watermark_advances(self):
        tracker = _SequenceTracker()
        for sequence in (0, 1, 2):
            tracker.record(sequence)
        assert tracker.watermark == 3


class TestValidatorProfiles:
    def test_table_rows_complete(self):
        active = [p for p in TABLE_I_PROFILES if not p.silent]
        silent = [p for p in TABLE_I_PROFILES if p.silent]
        assert len(active) == 17
        assert len(silent) == 7

    def test_total_stake_is_published_value(self):
        from repro.units import lamports_to_usd
        total = sum(p.stake for p in TABLE_I_PROFILES)
        assert lamports_to_usd(total) == pytest.approx(1_250_000, rel=0.001)

    def test_fee_reconstruction_is_exact(self):
        """compute_unit_price must reproduce the Table I cost column."""
        from repro.host.fees import PriorityFee
        from repro.units import lamports_to_cents
        from repro.validators.profiles import SIGN_TX_COMPUTE_BUDGET
        for profile in TABLE_I_PROFILES:
            if profile.silent or profile.compute_unit_price() == 0:
                continue
            fee = PriorityFee(profile.compute_unit_price()).fee(
                1, 1, SIGN_TX_COMPUTE_BUDGET,
            )
            assert lamports_to_cents(fee) == pytest.approx(profile.fee_cents, abs=0.005)

    def test_validator_one_has_the_outage(self):
        one = next(p for p in TABLE_I_PROFILES if p.index == 1)
        assert one.outages and one.outages[0][1] == 36_000.0
        assert one.join_fraction == 0.0

    def test_joins_staggered_by_engagement(self):
        active = sorted((p for p in TABLE_I_PROFILES if not p.silent),
                        key=lambda p: p.index)
        # Lower signature counts => later joins (the calibration rule).
        assert active[0].join_fraction < active[10].join_fraction

    def test_silent_stake_below_bootstrap_threshold(self):
        """Quorum feasibility: epoch-0 = {#1}; early epochs must not be
        blockable by the silent seven."""
        one = next(p for p in TABLE_I_PROFILES if p.index == 1)
        silent_total = sum(p.stake for p in TABLE_I_PROFILES if p.silent)
        assert silent_total < one.stake / 2

    def test_simple_profiles_uniform(self):
        profiles = simple_profiles(5)
        assert len({p.stake for p in profiles}) == 1
        assert not any(p.silent for p in profiles)


class TestGossip:
    def test_delivery_with_delay(self):
        sim = Simulation(seed=9)
        gossip = GossipNetwork(sim, mean_delay=0.5)
        seen = []
        gossip.subscribe("topic", seen.append)
        gossip.publish("topic", "message")
        assert seen == []  # not synchronous
        sim.run_until(30.0)
        assert seen == ["message"]

    def test_topic_isolation(self):
        sim = Simulation(seed=9)
        gossip = GossipNetwork(sim)
        seen = []
        gossip.subscribe("a", seen.append)
        gossip.publish("b", "x")
        sim.run_until(30.0)
        assert seen == []

    def test_fanout(self):
        sim = Simulation(seed=9)
        gossip = GossipNetwork(sim)
        counts = [0, 0]
        gossip.subscribe("t", lambda _: counts.__setitem__(0, counts[0] + 1))
        gossip.subscribe("t", lambda _: counts.__setitem__(1, counts[1] + 1))
        gossip.publish("t", object())
        sim.run_until(30.0)
        assert counts == [1, 1]


class TestCounterpartyModel:
    def make(self, **kw):
        sim = Simulation(seed=15)
        chain = CounterpartyChain(sim, SimSigScheme(), CounterpartyConfig(**kw))
        return sim, chain

    def test_blocks_advance(self):
        sim, chain = self.make()
        sim.run_until(60.0)
        assert chain.height == 10  # 6 s cadence

    def test_lazy_commit_is_deterministic(self):
        sim, chain = self.make()
        sim.run_until(60.0)
        first = chain.light_client_update(5)
        again = chain.light_client_update(5)
        assert first.commit == again.commit
        assert len(first.commit) >= int(0.7 * chain.config.validator_count)

    def test_update_verifies_against_light_client(self):
        from repro.lightclient.tendermint import TendermintLightClient
        sim, chain = self.make()
        genesis = chain.genesis_validator_set()
        sim.run_until(60.0)
        client = TendermintLightClient(chain.config.chain_id, genesis)
        client.update(chain.light_client_update(9), chain.scheme)
        assert client.latest_height() == 9
        assert client.consensus_root(9) == chain.blocks[9].header.app_hash

    def test_app_hash_matches_store_view(self):
        sim, chain = self.make()
        chain.submit(lambda: chain.ibc.store.set("x", b"y"))
        sim.run_until(60.0)
        for height in (3, 7):
            record_root = chain.blocks[height].header.app_hash
            assert chain.store_at(height).root_hash == record_root

    def test_submit_callback_reports_height_and_errors(self):
        sim, chain = self.make()
        outcomes = []
        chain.submit(lambda: 42, on_result=lambda v, h: outcomes.append((v, h)))

        def boom():
            from repro.errors import IbcError
            raise IbcError("nope")

        chain.submit(boom, on_result=lambda v, h: outcomes.append((v, h)))
        sim.run_until(10.0)
        assert outcomes[0] == (42, 1)
        value, height = outcomes[1]
        assert isinstance(value, Exception) and height == 1

    def test_sent_packet_polling(self):
        sim, chain = self.make()
        chain.bank.mint("u", "PICA", 10)
        # A direct (non-block) send is attributed to the next height.
        sim.run_until(6.5)
        assert chain.sent_packets_since(0) == []

    def test_retention_prunes_old_blocks(self):
        sim, chain = self.make(retain_blocks=5)
        sim.run_until(120.0)
        assert chain.height == 20
        assert 1 not in chain.blocks
        assert chain.height in chain.blocks
        assert len(chain.blocks) <= 6


class TestCrankerAndSweep:
    def test_cranker_generates_on_state_change(self):
        dep = Deployment(DeploymentConfig(
            seed=51,
            guest=GuestConfig(delta_seconds=10_000.0, min_stake_lamports=1),
            profiles=simple_profiles(4),
        ))
        height_before = dep.contract.head.height
        dep.contract.bank.mint("alice", "GUEST", 10)
        # Mutate guest state via a failing-later op? Use staking: bond
        # changes no trie state, so drive a block via establish_link
        # handshake instead.
        dep.establish_link()
        assert dep.contract.head.height > height_before
        assert dep.cranker.blocks_cranked >= 1

    def test_sweep_rescues_a_stuck_block(self):
        """A block generated while all validators missed the event still
        finalises via the periodic catch-up sweep."""
        dep = Deployment(DeploymentConfig(
            seed=52,
            guest=GuestConfig(delta_seconds=30.0, min_stake_lamports=1),
            # Zero online probability: validators never react to events,
            # only the sweep can save the chain.
            profiles=[
                p.__class__(**{**p.__dict__, "online_probability": 0.0})
                for p in simple_profiles(4)
            ],
        ))
        dep.run_for(300.0)
        finalised = [b for b in dep.contract.blocks[1:] if b.finalised]
        assert finalised, "sweep should have finalised the Δ blocks"
