"""Tests for validator rewards — the §V-C incentive, implemented.

The paper: "since automatic slashing and rewards was not implemented,
those Validators kept their stake intact... We expect that with a full
implementation of all the incentives, Validators will engage."  This
reproduction distributes the packet fees each finalised block collected
to the signers that finalised it, pro rata by stake.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.units import lamports_to_usd
from repro.validators.profiles import simple_profiles


@pytest.fixture
def busy_dep():
    """A deployment with traffic, so fees accrue."""
    dep = Deployment(DeploymentConfig(
        seed=121,
        guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
    ))
    guest_chan, cp_chan = dep.establish_link()
    dep.contract.bank.mint("alice", "GUEST", 10 ** 9)
    for _ in range(5):
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 10, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
    dep.run_for(240.0)
    return dep


class TestRewardAccrual:
    def test_signers_accrue_rewards(self, busy_dep):
        balances = busy_dep.contract.reward_balances
        assert balances, "fees flowed but nobody earned rewards"
        assert all(amount > 0 for amount in balances.values())

    def test_rewards_funded_by_fees(self, busy_dep):
        total_rewards = sum(busy_dep.contract.reward_balances.values())
        assert 0 < total_rewards <= busy_dep.contract.fees_collected

    def test_silent_validators_earn_nothing(self):
        import dataclasses
        profiles = simple_profiles(5)
        profiles[4] = dataclasses.replace(profiles[4], silent=True)
        dep = Deployment(DeploymentConfig(
            seed=122,
            guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
            profiles=profiles,
        ))
        guest_chan, _ = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 10 ** 9)
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 10, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(120.0)
        silent_key = dep.validators[4].keypair.public_key
        assert dep.contract.reward_balances.get(silent_key, 0) == 0

    def test_rewards_proportional_to_stake(self):
        from repro.validators.profiles import ValidatorProfile
        from repro.units import sol_to_lamports
        profiles = [
            ValidatorProfile(index=1, fee_cents=0.2, latency_median=2.0,
                             latency_q3=3.0, stake=sol_to_lamports(300.0)),
            ValidatorProfile(index=2, fee_cents=0.2, latency_median=2.0,
                             latency_q3=3.0, stake=sol_to_lamports(100.0)),
            ValidatorProfile(index=3, fee_cents=0.2, latency_median=2.0,
                             latency_q3=3.0, stake=sol_to_lamports(100.0)),
        ]
        dep = Deployment(DeploymentConfig(
            seed=123,
            guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
            profiles=profiles,
        ))
        guest_chan, _ = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 10 ** 9)
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 10, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(180.0)

        whale = dep.validators[0]
        minnow = dep.validators[1]
        whale_reward = dep.contract.reward_balances.get(whale.keypair.public_key, 0)
        minnow_reward = dep.contract.reward_balances.get(minnow.keypair.public_key, 0)
        if whale_reward and minnow_reward:
            # Stake ratio 3:1 shows in the payout (both signed the same
            # blocks in this small quorum).
            assert 2.0 < whale_reward / minnow_reward < 4.0


class TestRewardClaims:
    def test_claim_pays_out(self, busy_dep):
        node = next(
            v for v in busy_dep.validators
            if busy_dep.contract.reward_balances.get(v.keypair.public_key, 0) > 0
        )
        accrued = busy_dep.contract.reward_balances[node.keypair.public_key]
        payer = node.api.payer
        balance_before = busy_dep.host.accounts.balance(payer)
        results = []
        node.api.claim_rewards(node.keypair, on_result=results.append)
        busy_dep.run_for(30.0)
        assert results[0].success, results[0].error
        gained = busy_dep.host.accounts.balance(payer) - balance_before
        assert gained == accrued - results[0].fee_paid
        assert node.keypair.public_key not in busy_dep.contract.reward_balances

    def test_double_claim_rejected(self, busy_dep):
        node = next(
            v for v in busy_dep.validators
            if busy_dep.contract.reward_balances.get(v.keypair.public_key, 0) > 0
        )
        results = []
        node.api.claim_rewards(node.keypair, on_result=results.append)
        busy_dep.run_for(30.0)
        node.api.claim_rewards(node.keypair, on_result=results.append)
        busy_dep.run_for(30.0)
        assert results[0].success
        assert not results[1].success
        assert "no rewards" in results[1].error

    def test_thief_cannot_claim_another_validators_rewards(self, busy_dep):
        """The claim must be signed by the validator key for the *payer*:
        a thief replaying someone's claim to their own payer fails."""
        from repro.guest import instructions as ins
        from repro.host.fees import BaseFee
        from repro.host.transaction import Instruction, SigVerify, Transaction

        victim = next(
            v for v in busy_dep.validators
            if busy_dep.contract.reward_balances.get(v.keypair.public_key, 0) > 0
        )
        # The victim once signed a claim for ITS OWN payer; the thief
        # replays that signature with the thief as transaction payer.
        victim_message = ins.claim_message(victim.keypair.public_key,
                                           bytes(victim.api.payer))
        stolen_signature = victim.keypair.sign(victim_message)

        thief = busy_dep.user
        results = []
        tx = Transaction(
            payer=thief,
            instructions=(Instruction(
                busy_dep.contract.program_id,
                (busy_dep.contract.state_account, busy_dep.contract.treasury),
                ins.claim_rewards(victim.keypair.public_key),
            ),),
            fee_strategy=BaseFee(),
            sig_verifies=(SigVerify(victim.keypair.public_key, victim_message,
                                    stolen_signature),),
        )
        busy_dep.host.submit(tx, on_result=results.append)
        busy_dep.run_for(30.0)
        assert not results[0].success
        assert "not authorised" in results[0].error
        assert busy_dep.contract.reward_balances[victim.keypair.public_key] > 0


class TestIncentiveCompatibility:
    def test_signing_profitable_under_traffic(self):
        """The §V-C hypothesis: with rewards implemented, an active
        validator's income exceeds its signing fees."""
        dep = Deployment(DeploymentConfig(
            seed=124,
            guest=GuestConfig(delta_seconds=600.0, min_stake_lamports=1,
                              send_fee_lamports=100_000),
            profiles=simple_profiles(4),
        ))
        guest_chan, _ = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 10 ** 9)
        for _ in range(10):
            payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 1, "alice", "bob")
            dep.user_api.send_packet("transfer", str(guest_chan), payload)
            dep.run_for(30.0)
        dep.run_for(120.0)

        for node in dep.validators:
            records = node.successful_records()
            if not records:
                continue
            costs = sum(r.fee_paid for r in records)
            rewards = dep.contract.reward_balances.get(node.keypair.public_key, 0)
            assert rewards > costs, (
                f"validator #{node.profile.index} paid {costs} but earned {rewards}"
            )
