"""Structural tests for the trie's internals: nibbles, node shapes and
the edge cases of splitting/merging paths."""

import pytest

from repro.crypto.hashing import Hash
from repro.trie import SealableTrie, verify_membership, verify_non_membership
from repro.trie.nibbles import (
    common_prefix_len,
    decode_nibbles,
    encode_nibbles,
    key_to_nibbles,
    nibbles_to_key,
)
from repro.trie.nodes import BranchNode, ExtensionNode, LeafNode, SealedNode


class TestNibbles:
    def test_roundtrip(self):
        key = bytes(range(256))[:40]
        assert nibbles_to_key(key_to_nibbles(key)) == key

    def test_high_nibble_first(self):
        assert key_to_nibbles(b"\xab") == (0xA, 0xB)

    def test_odd_pack_rejected(self):
        with pytest.raises(ValueError):
            nibbles_to_key((1, 2, 3))

    def test_common_prefix(self):
        assert common_prefix_len((1, 2, 3), (1, 2, 9)) == 2
        assert common_prefix_len((), (1,)) == 0
        assert common_prefix_len((5,), (5,)) == 1

    @pytest.mark.parametrize("path", [(), (1,), (1, 2), (0xF,) * 7, (0, 0, 0)])
    def test_encoding_roundtrip(self, path):
        assert decode_nibbles(encode_nibbles(path)) == path

    def test_parity_distinguishes(self):
        # (1,) vs (1, 0) must encode differently (trailing-zero ambiguity).
        assert encode_nibbles((1,)) != encode_nibbles((1, 0))

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_nibbles(b"")
        with pytest.raises(ValueError):
            decode_nibbles(b"\x07\x12")  # bad parity byte
        with pytest.raises(ValueError):
            decode_nibbles(b"\x01\x1f")  # odd with nonzero padding


class TestNodeHashing:
    def test_leaf_hash_binds_path_and_value(self):
        a = LeafNode((1, 2), b"v")
        b = LeafNode((1, 3), b"v")
        c = LeafNode((1, 2), b"w")
        assert len({a.hash(), b.hash(), c.hash()}) == 3

    def test_extension_requires_path(self):
        with pytest.raises(ValueError):
            ExtensionNode((), LeafNode((1,), b"v"))

    def test_branch_validates_slot_count(self):
        with pytest.raises(ValueError):
            BranchNode(children=[None] * 15)

    def test_sealed_preserves_hash(self):
        leaf = LeafNode((1, 2), b"v")
        stub = SealedNode.of_leaf(leaf)
        assert stub.hash() == leaf.hash()
        assert stub.storage_bytes() == 0

    def test_sealed_branch_preserves_hash(self):
        branch = BranchNode()
        branch.children[0] = LeafNode((1,), b"v")
        branch.children[5] = LeafNode((2,), b"w")
        stub = SealedNode.of_branch(branch)
        assert stub.hash() == branch.hash()
        assert stub.storage_bytes() == 0

    def test_opaque_stub_cannot_be_repathed(self):
        stub = SealedNode.opaque(Hash.of(b"subtree"))
        assert stub.hash() == Hash.of(b"subtree")
        with pytest.raises(ValueError):
            stub.with_prefix((1, 2))

    def test_branch_storage_counts_present_children_only(self):
        empty = BranchNode()
        empty_size = empty.storage_bytes()
        two = BranchNode()
        two.children[0] = LeafNode((1,), b"v")
        two.children[5] = LeafNode((2,), b"w")
        assert two.storage_bytes() == empty_size + 2 * 32


class TestSplittingEdgeCases:
    """Keys engineered to exercise every split/merge branch."""

    def test_split_at_first_nibble(self):
        trie = SealableTrie()
        trie.set(b"\x00" + bytes(31), b"a")
        trie.set(b"\xf0" + bytes(31), b"b")
        assert trie.get(b"\x00" + bytes(31)) == b"a"
        assert trie.get(b"\xf0" + bytes(31)) == b"b"

    def test_split_deep_shared_prefix(self):
        trie = SealableTrie()
        base = bytes(31)
        trie.set(base + b"\x00", b"a")
        trie.set(base + b"\x01", b"b")  # diverge at the last nibble
        assert trie.get(base + b"\x00") == b"a"
        assert trie.get(base + b"\x01") == b"b"
        proof = trie.prove(base + b"\x01")
        assert verify_membership(trie.root_hash, proof)

    def test_extension_split_head(self):
        """New key diverges at the first nibble of an extension."""
        trie = SealableTrie()
        trie.set(b"\x11" * 8, b"a")
        trie.set(b"\x11" * 7 + b"\x12", b"b")  # creates an extension
        trie.set(b"\x21" + b"\x11" * 7, b"c")  # diverges immediately
        for key, value in ((b"\x11" * 8, b"a"),
                           (b"\x11" * 7 + b"\x12", b"b"),
                           (b"\x21" + b"\x11" * 7, b"c")):
            assert trie.get(key) == value

    def test_extension_split_middle(self):
        trie = SealableTrie()
        trie.set(b"\xaa\xbb\xcc\x00", b"a")
        trie.set(b"\xaa\xbb\xcc\x11", b"b")
        trie.set(b"\xaa\xbb\x00\x00", b"c")  # splits the shared extension
        for key, value in ((b"\xaa\xbb\xcc\x00", b"a"),
                           (b"\xaa\xbb\xcc\x11", b"b"),
                           (b"\xaa\xbb\x00\x00", b"c")):
            assert trie.get(key) == value

    def test_single_nibble_extension_remainder(self):
        """Splitting an extension whose tail is exactly one nibble must
        re-attach the child directly (no empty extension)."""
        trie = SealableTrie()
        trie.set(b"\xab\x10", b"a")
        trie.set(b"\xab\x20", b"b")   # extension path ends mid-byte
        trie.set(b"\xac\x00", b"c")
        for key, value in ((b"\xab\x10", b"a"), (b"\xab\x20", b"b"),
                           (b"\xac\x00", b"c")):
            assert trie.get(key) == value

    def test_delete_merges_through_extension_chain(self):
        trie = SealableTrie()
        keys = [b"\xaa\xbb\xcc\x00", b"\xaa\xbb\xcc\x11", b"\xaa\x00\x00\x00"]
        for key in keys:
            trie.set(key, b"v")
        trie.delete(keys[1])
        trie.delete(keys[2])
        # Everything collapsed back into a single leaf.
        assert trie.node_count() == 1
        assert trie.get(keys[0]) == b"v"

    def test_absence_proofs_at_every_divergence_kind(self):
        trie = SealableTrie()
        trie.set(b"\xaa\xbb\xcc\x00", b"a")
        trie.set(b"\xaa\xbb\xcc\x11", b"b")
        root = trie.root_hash
        probes = [
            b"\xaa\xbb\xcc\x22",  # empty branch slot
            b"\xaa\xbb\x00\x00",  # diverges inside the extension
            b"\x00\x00\x00\x00",  # diverges at the root
            b"\xaa\xbb\xcc\x01",  # diverges inside a leaf path
        ]
        for probe in probes:
            proof = trie.prove_absence(probe)
            assert verify_non_membership(root, proof), probe.hex()

    def test_root_leaf_replacement(self):
        trie = SealableTrie()
        trie.set(b"ab", b"1")
        trie.delete(b"ab")
        trie.set(b"cd", b"2")
        assert trie.get(b"cd") == b"2"
        assert trie.node_count() == 1

    def test_zero_length_values(self):
        trie = SealableTrie()
        trie.set(b"\x01" * 32, b"")
        assert trie.get(b"\x01" * 32) == b""
        proof = trie.prove(b"\x01" * 32)
        assert verify_membership(trie.root_hash, proof)
