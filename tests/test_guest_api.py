"""Unit tests for the client-side API types and sizing decisions."""

import pytest

from repro import Deployment, DeploymentConfig
from repro.guest.api import DeliveryResult, LcUpdateResult
from repro.guest.config import GuestConfig
from repro.validators.profiles import simple_profiles


class TestResultTypes:
    def test_lc_update_latency(self):
        result = LcUpdateResult(
            height=5, transaction_count=36, signature_count=160,
            total_fee=1_000_000, first_tx_time=100.0, last_tx_time=124.5,
            success=True,
        )
        assert result.latency == pytest.approx(24.5)

    def test_delivery_result_fields(self):
        result = DeliveryResult(transaction_count=4, total_fee=20_000,
                                slot=77, success=False, error="boom")
        assert not result.success
        assert result.error == "boom"


class TestHandshakeSizing:
    @pytest.fixture(scope="class")
    def dep(self):
        return Deployment(DeploymentConfig(
            seed=151,
            guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
            profiles=simple_profiles(4),
        ))

    def test_small_handshake_rides_inline(self, dep):
        """A proof-free datagram (conn_open_init) fits one transaction."""
        from repro.ibc.messages import MsgConnOpenInit
        results = []
        dep.relayer_api.submit_handshake(
            MsgConnOpenInit(
                client_id=dep.contract.counterparty_client_id,
                counterparty_client_id=dep.guest_client_id_on_cp,
            ),
            on_done=results.append,
        )
        dep.run_for(30.0)
        assert results and results[0].success
        assert results[0].transaction_count == 1

    def test_large_handshake_gets_chunked(self, dep):
        """A datagram carrying a deep proof is staged through chunks and
        still lands atomically (one bundle, one block)."""
        import hashlib
        from repro.ibc import commitment as paths
        from repro.ibc.messages import MsgConnOpenTry
        # A big store => a proof too large for one transaction.
        trie = dep.counterparty.ibc.store.trie
        for index in range(4_000):
            key = hashlib.sha256(b"big" + index.to_bytes(8, "big")).digest()
            trie.set(key, key)
        dep.run_for(10.0)
        conn = dep.counterparty.ibc.conn_open_init(
            dep.guest_client_id_on_cp, dep.contract.counterparty_client_id,
        )
        proof = dep.counterparty.ibc.store.prove(paths.connection_path(conn))
        msg = MsgConnOpenTry(
            client_id=dep.contract.counterparty_client_id,
            counterparty_client_id=dep.guest_client_id_on_cp,
            counterparty_connection_id=conn,
            proof=proof, proof_height=dep.counterparty.height,
        )
        from repro.ibc.messages import encode_handshake
        from repro.lightclient.chunked import usable_chunk_bytes
        assert len(encode_handshake(msg)) > usable_chunk_bytes()

        results = []
        dep.relayer_api.submit_handshake(msg, on_done=results.append)
        dep.run_for(30.0)
        assert results
        # Chunk transactions + the exec transaction in one bundle.
        assert results[0].transaction_count >= 3
        # (The try itself fails — the guest's client has no consensus for
        # that height — but the *staging machinery* is what's under test;
        # the failure must be the proof/height one, not a size error.)
        if not results[0].success:
            assert "size" not in (results[0].error or "")


class TestApiAccounting:
    def test_lc_update_fee_accounting_matches_receipts(self):
        dep = Deployment(DeploymentConfig(
            seed=152,
            guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
            profiles=simple_profiles(4),
        ))
        dep.run_for(30.0)
        burned_before = dep.host.total_fees_burned()
        results = []
        dep.relayer_api.submit_lc_update(
            dep.counterparty.light_client_update(), on_done=results.append,
        )
        dep.run_for(120.0)
        result = results[0]
        assert result.success
        burned = dep.host.total_fees_burned() - burned_before
        # Every lamport the update cost is accounted in the result
        # (other actors pay fees too, so >=).
        assert burned >= result.total_fee
        # Base-fee decomposition: one tx signature each + one per
        # precompile-verified commit signature.
        expected = 5_000 * (result.transaction_count + result.signature_count)
        assert result.total_fee == expected
