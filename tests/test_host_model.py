"""Tests for the host chain's stochastic models: congestion, spikes,
event delivery, retention, and the compute meter's unit prices."""

import pytest

from repro.crypto.simsig import SimSigScheme
from repro.errors import ComputeBudgetExceededError
from repro.host.chain import HostChain, HostConfig
from repro.host.compute import ComputeMeter
from repro.host.fees import AdaptiveFee, BaseFee, BundleFee, PriorityFee
from repro.sim import Simulation
from repro.sim.rng import Rng


def make_chain(**config_kw):
    sim = Simulation(seed=33)
    chain = HostChain(sim, SimSigScheme(), HostConfig(**config_kw))
    return sim, chain


class TestCongestionModel:
    def test_bounded(self):
        sim, chain = make_chain()
        for hour in range(100):
            level = chain.congestion_at(hour * 3600.0 + 17.0)
            assert 0.0 <= level <= 1.0

    def test_diurnal_swing(self):
        sim, chain = make_chain(spike_probability=0.0)
        peak = chain.congestion_at(86_400.0 / 4)       # sine max
        trough = chain.congestion_at(3 * 86_400.0 / 4)  # sine min
        assert peak > trough
        assert peak - trough == pytest.approx(2 * chain.config.diurnal_congestion)

    def test_spike_hours_cached_deterministically(self):
        sim, chain = make_chain(spike_probability=0.5)
        spike_hour = next(
            hour for hour in range(100)
            if chain.congestion_at(hour * 3600.0) == chain.config.spike_congestion
        )
        t = spike_hour * 3600.0 + 10.0
        # Within a spiking hour the level pins to spike_congestion, so
        # repeated queries must agree wherever they land in the hour.
        assert chain.congestion_at(t) == chain.congestion_at(t + 60.0)

    def test_spike_level(self):
        sim, chain = make_chain(spike_probability=1.0, spike_congestion=0.9)
        assert chain.congestion_at(100.0) == 0.9

    def test_zero_spike_probability_never_spikes(self):
        sim, chain = make_chain(spike_probability=0.0, base_congestion=0.3)
        for hour in range(200):
            assert chain.congestion_at(hour * 3600.0) < 0.5


class TestSchedulingDelays:
    def test_congestion_hurts_base_most(self):
        rng_a, rng_b = Rng(1), Rng(1)
        base = BaseFee()
        calm = sum(base.scheduling_delay(rng_a, 0.1) for _ in range(500)) / 500
        busy = sum(base.scheduling_delay(rng_b, 0.9) for _ in range(500)) / 500
        assert busy > 3 * calm

    def test_priority_flat_under_load(self):
        rng_a, rng_b = Rng(2), Rng(2)
        priority = PriorityFee(1_000)
        calm = sum(priority.scheduling_delay(rng_a, 0.1) for _ in range(500)) / 500
        busy = sum(priority.scheduling_delay(rng_b, 0.9) for _ in range(500)) / 500
        assert busy < 4 * calm  # vs >10x for the base fee's quadratic queue

    def test_bundle_fastest_when_busy(self):
        rng = Rng(3)
        samples = 500
        mean = lambda strategy: sum(
            strategy.scheduling_delay(rng, 0.9) for _ in range(samples)
        ) / samples
        assert mean(BundleFee(1)) < mean(BaseFee())

    def test_adaptive_tracks_probe(self):
        probe = [0.0]
        fee = AdaptiveFee(lambda: probe[0])
        fee.fee(1, 0, 1_000_000)
        quiet_price = fee.last_cu_price
        probe[0] = 0.9
        fee.fee(1, 0, 1_000_000)
        assert fee.last_cu_price > 5 * quiet_price
        assert fee.last_cu_price <= fee.max_cu_price


class TestComputeMeter:
    def test_charge_accumulates(self):
        meter = ComputeMeter(budget=10_000)
        meter.charge(4_000)
        meter.charge(5_000)
        assert meter.remaining == 1_000

    def test_exhaustion_raises(self):
        meter = ComputeMeter(budget=1_000)
        with pytest.raises(ComputeBudgetExceededError):
            meter.charge(1_001)

    def test_budget_cannot_exceed_cap(self):
        with pytest.raises(ComputeBudgetExceededError):
            ComputeMeter(budget=2_000_000)  # above the 1.4 M cap

    def test_custom_hard_cap(self):
        meter = ComputeMeter(budget=5_000_000, hard_cap=12_000_000)
        meter.charge(4_999_999)
        assert meter.remaining == 1

    def test_hash_charge_scales_with_input(self):
        small, large = ComputeMeter(), ComputeMeter()
        small.charge_hash(32)
        large.charge_hash(32 * 100)
        assert large.consumed == 100 * small.consumed

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            ComputeMeter().charge(-1)

    def test_signature_verify_units(self):
        meter = ComputeMeter()
        meter.charge_signature_verify()
        assert meter.consumed == 25_000


class TestBlockRetention:
    def test_host_prunes_old_blocks(self):
        sim, chain = make_chain(retain_blocks=10)
        sim.run_until(40.0)  # 100 slots at 0.4 s
        assert chain.slot == 100
        assert len(chain.blocks) <= 20  # trimmed at 2x watermark

    def test_unbounded_by_default(self):
        sim, chain = make_chain()
        sim.run_until(40.0)
        assert len(chain.blocks) == 100


class TestTransactionLayout:
    """Wire-size arithmetic: the quantity the 1232-byte cap binds on."""

    def make_tx(self, data=b"", verifies=0, extra_signers=0):
        from repro.crypto.simsig import SimSigScheme
        from repro.host.accounts import Address
        from repro.host.transaction import Instruction, SigVerify, Transaction
        scheme = SimSigScheme()
        keypair = scheme.keypair_from_seed(bytes(range(32)))
        entries = tuple(
            SigVerify(keypair.public_key, bytes([i]) * 32,
                      keypair.sign(bytes([i]) * 32))
            for i in range(verifies)
        )
        return Transaction(
            payer=Address.derive("layout-payer"),
            instructions=(Instruction(Address.derive("layout-prog"),
                                      (Address.derive("layout-acct"),), data),),
            fee_strategy=BaseFee(),
            extra_signers=tuple(Address.derive(f"extra-{i}")
                                for i in range(extra_signers)),
            sig_verifies=entries,
        )

    def test_data_bytes_count_one_to_one(self):
        small = self.make_tx(data=b"x" * 10).serialized_size()
        large = self.make_tx(data=b"x" * 110).serialized_size()
        assert large - small == 100

    def test_each_signer_adds_96_bytes(self):
        # 64 signature + 32 account key.
        base = self.make_tx().serialized_size()
        plus = self.make_tx(extra_signers=1).serialized_size()
        assert plus - base == 96

    def test_each_verify_entry_adds_its_envelope(self):
        base = self.make_tx().serialized_size()
        plus = self.make_tx(verifies=1).serialized_size()
        assert plus - base == 64 + 32 + 14 + 32  # sig + key + offsets + message

    def test_duplicate_accounts_counted_once(self):
        from repro.host.accounts import Address
        from repro.host.transaction import Instruction, Transaction
        addr = Address.derive("dup")
        tx = Transaction(
            payer=addr,
            instructions=(Instruction(Address.derive("p"), (addr, addr), b""),),
            fee_strategy=BaseFee(),
        )
        reference = Transaction(
            payer=addr,
            instructions=(Instruction(Address.derive("p"), (addr,), b""),),
            fee_strategy=BaseFee(),
        )
        # The second occurrence costs only its 1-byte account index.
        assert tx.serialized_size() == reference.serialized_size() + 1

    def test_max_chunk_bytes_consistent_with_cap(self):
        from repro.host.transaction import max_chunk_bytes
        from repro.units import MAX_TRANSACTION_BYTES
        budget = max_chunk_bytes(account_count=4, signer_count=1)
        tx = self.make_tx(data=b"x" * budget)
        assert tx.serialized_size() <= MAX_TRANSACTION_BYTES
