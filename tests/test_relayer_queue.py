"""Unit tests for the relayer's light-client work queue and flows.

The queue serialises chunked updates (one at a time), releases work
items once a verified counterparty height covers them, and retries when
the needed block has not been produced yet.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.validators.profiles import simple_profiles


@pytest.fixture
def dep():
    return Deployment(DeploymentConfig(
        seed=81,
        guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
    ))


class TestLcWorkQueue:
    def test_immediate_dispatch_when_height_known(self, dep):
        dep.run_for(30.0)
        outcomes = []
        dep.relayer_api.submit_lc_update(
            dep.counterparty.light_client_update(),
            on_done=outcomes.append,
        )
        dep.run_for(120.0)
        assert outcomes[-1].success
        known = dep.contract.counterparty_client.latest_height()

        fired = []
        dep.relayer._queue_guest_work(known, fired.append)
        # Already covered: the action runs synchronously, no new update.
        assert fired == [known]

    def test_queued_work_released_after_update(self, dep):
        dep.run_for(30.0)
        target = dep.counterparty.height + 1
        fired = []
        dep.relayer._queue_guest_work(target, fired.append)
        assert fired == []          # queued, not yet satisfiable
        dep.run_for(240.0)          # block produced + chunked update runs
        assert fired and fired[0] >= target
        assert dep.relayer.metrics.lc_updates

    def test_one_update_serves_many_items(self, dep):
        dep.run_for(30.0)
        target = dep.counterparty.height + 1
        fired = []
        for _ in range(5):
            dep.relayer._queue_guest_work(target, fired.append)
        dep.run_for(240.0)
        assert len(fired) == 5
        # All five were satisfied by a small number of chunked updates
        # (batching is the point of the queue).
        assert len(dep.relayer.metrics.lc_updates) <= 2

    def test_updates_never_run_concurrently(self, dep):
        dep.run_for(30.0)
        for offset in range(3):
            dep.relayer._queue_guest_work(dep.counterparty.height + offset,
                                          lambda h: None)
        assert dep.relayer._lc_busy or not dep.relayer._lc_queue
        dep.run_for(300.0)
        updates = dep.relayer.metrics.lc_updates
        # Sequential: each update's first tx comes after the previous
        # update's last tx.
        for prev, cur in zip(updates, updates[1:]):
            assert cur.first_tx_time >= prev.last_tx_time

    def test_future_height_waits_for_block_production(self, dep):
        dep.run_for(30.0)
        far_future = dep.counterparty.height + 20  # ~2 minutes away
        fired = []
        dep.relayer._queue_guest_work(far_future, fired.append)
        dep.run_for(60.0)
        assert fired == []  # the block does not exist yet
        dep.run_for(240.0)
        assert fired and fired[0] >= far_future


class TestRelayerAlg2Conditions:
    def test_empty_blocks_not_relayed(self, dep):
        """Alg. 2 line 5: blocks without packets or epoch changes stay
        local (no guest-client update on the counterparty)."""
        updates_before = dep.guest_client.latest_height()
        dep.run_for(400.0)  # several Δ empty blocks
        assert dep.contract.head.height >= 2
        assert dep.guest_client.latest_height() == updates_before

    def test_blocks_with_packets_are_relayed(self, dep):
        guest_chan, cp_chan = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 10)
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 5, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        before = dep.guest_client.latest_height()
        dep.run_for(120.0)
        assert dep.guest_client.latest_height() > before
