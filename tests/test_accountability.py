"""Accountable safety (docs/ACCOUNTABILITY.md).

Covers the :class:`AccountabilityProof` wire format and verifier, the
deterministic slash-and-eject with its liveness floor, both light
clients' conflict-to-proof paths (guest and Tendermint), and the full
on-chain prosecution: forged quorum finalisation on gossip -> fisherman
builds the proof -> ACCOUNTABILITY instruction slashes the intersection
-> counterparty light client discounts the offenders.
"""

from dataclasses import replace
from fractions import Fraction

import pytest

from repro import Deployment, DeploymentConfig
from repro.accountability import (
    AccountabilityProof,
    Finalisation,
    apply_accountability_slash,
    build_proof,
    verify_proof,
)
from repro.chaos import ChaosInjector, FaultPlan
from repro.crypto.hashing import Hash
from repro.crypto.simsig import SimSigScheme
from repro.errors import (
    AccountabilityError,
    ClientError,
    EquivocationError,
    EvidenceError,
)
from repro.fisherman.evidence import FINALISATION_TOPIC, FinalisationClaim
from repro.guest.block import GuestBlockHeader, sign_message
from repro.guest.config import GuestConfig
from repro.guest.epoch import Epoch
from repro.guest.staking import StakingPool
from repro.lightclient.guest_client import GuestClientUpdate, GuestLightClient
from repro.lightclient.tendermint import (
    CometHeader,
    TendermintLightClient,
    ValidatorSet,
)
from repro.validators.profiles import simple_profiles

SCHEME = SimSigScheme()


def keypair(index):
    return SCHEME.keypair_from_seed(bytes([index + 1]) * 32)


def make_epoch(count=5, stake=100, epoch_id=0):
    """An epoch of ``count`` equal-stake validators with a >2/3 quorum."""
    keypairs = [keypair(i) for i in range(count)]
    total = stake * count
    epoch = Epoch(
        epoch_id=epoch_id,
        validators={kp.public_key: stake for kp in keypairs},
        quorum_stake=(total * 2) // 3 + 1,
    )
    return epoch, keypairs


def finalisation(height, commitment, keypairs):
    """A guest-style finalisation: everyone signs (height, commitment)."""
    message = sign_message(height, commitment)
    return Finalisation(
        commitment=commitment,
        sign_bytes=message,
        signatures=tuple(sorted(
            ((kp.public_key, kp.sign(message)) for kp in keypairs),
            key=lambda item: bytes(item[0]))),
    )


def conflicting_proof(epoch, keypairs, height=7,
                      first=b"\x01" * 32, second=b"\x02" * 32,
                      first_signers=None, second_signers=None):
    return build_proof(
        "guest", height, bytes(epoch.canonical_hash()),
        finalisation(height, first, first_signers or keypairs),
        finalisation(height, second, second_signers or keypairs),
    )


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------


class TestProofFormat:
    def test_round_trip(self):
        epoch, keypairs = make_epoch()
        proof = conflicting_proof(epoch, keypairs)
        back = AccountabilityProof.from_bytes(proof.to_bytes())
        assert back == proof
        assert back.proof_id() == proof.proof_id()

    def test_canonical_order_is_observation_independent(self):
        epoch, keypairs = make_epoch()
        a = finalisation(7, b"\x02" * 32, keypairs)
        b = finalisation(7, b"\x01" * 32, keypairs)
        forward = build_proof("guest", 7, bytes(epoch.canonical_hash()), a, b)
        reverse = build_proof("guest", 7, bytes(epoch.canonical_hash()), b, a)
        assert forward.to_bytes() == reverse.to_bytes()
        assert forward.proof_id() == reverse.proof_id()
        assert forward.first.commitment < forward.second.commitment

    def test_build_rejects_shared_commitment(self):
        epoch, keypairs = make_epoch()
        side = finalisation(7, b"\x01" * 32, keypairs)
        with pytest.raises(AccountabilityError, match="share a commitment"):
            build_proof("guest", 7, bytes(epoch.canonical_hash()), side, side)

    def test_offenders_are_the_sorted_intersection(self):
        epoch, keypairs = make_epoch()
        proof = conflicting_proof(
            epoch, keypairs,
            first_signers=keypairs[:4], second_signers=keypairs[1:])
        expected = sorted(
            (kp.public_key for kp in keypairs[1:4]), key=bytes)
        assert list(proof.offenders()) == expected


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------


class TestVerifyProof:
    def verify(self, proof, epoch, **overrides):
        kwargs = dict(
            powers=epoch.validators,
            total_power=epoch.total_stake,
            quorum_power=epoch.quorum_stake,
            batch_verify=SCHEME.verify_batch,
        )
        kwargs.update(overrides)
        return verify_proof(proof, **kwargs)

    def test_accepts_and_returns_double_signers(self):
        epoch, keypairs = make_epoch()
        proof = conflicting_proof(
            epoch, keypairs,
            first_signers=keypairs, second_signers=keypairs[:4])
        offenders = self.verify(proof, epoch)
        assert set(offenders) == {kp.public_key for kp in keypairs[:4]}

    def test_rejects_non_canonical_order(self):
        epoch, keypairs = make_epoch()
        proof = conflicting_proof(epoch, keypairs)
        swapped = replace(proof, first=proof.second, second=proof.first)
        with pytest.raises(AccountabilityError, match="canonical order"):
            self.verify(swapped, epoch)

    def test_rejects_sub_quorum_side(self):
        epoch, keypairs = make_epoch()
        proof = conflicting_proof(
            epoch, keypairs, second_signers=keypairs[:3])  # 300 < 334
        with pytest.raises(AccountabilityError, match="quorum power"):
            self.verify(proof, epoch)

    def test_rejects_tampered_signature(self):
        epoch, keypairs = make_epoch()
        proof = conflicting_proof(epoch, keypairs)
        good = proof.second.signatures
        bad = ((good[0][0], good[1][1]),) + good[1:]  # key 0, key 1's sig
        tampered = replace(proof, second=replace(proof.second,
                                                 signatures=bad))
        with pytest.raises(AccountabilityError, match="invalid signature"):
            self.verify(tampered, epoch)

    def test_rejects_thin_intersection(self):
        # Disjoint halves of a 4-validator set, each passing an
        # artificially low quorum: no attributable >1/3 overlap.
        epoch, keypairs = make_epoch(count=4)
        proof = conflicting_proof(
            epoch, keypairs,
            first_signers=keypairs[:2], second_signers=keypairs[2:])
        with pytest.raises(AccountabilityError, match="one-third overlap"):
            self.verify(proof, epoch, quorum_power=200)


# ----------------------------------------------------------------------
# Slash-and-eject
# ----------------------------------------------------------------------


class TestAccountabilitySlash:
    def make_pool(self, stakes):
        pool = StakingPool(GuestConfig(min_stake_lamports=1))
        keys = []
        for index, stake in enumerate(stakes):
            key = keypair(index).public_key
            pool.bond(key, stake)
            keys.append(key)
        return pool, keys

    def test_slash_conserves_stake_and_ejects(self):
        pool, keys = self.make_pool([100, 100, 100])
        outcome = apply_accountability_slash(
            pool, keys[:2], fraction=Fraction(1, 1), min_live=1)
        assert outcome.conserves_stake()
        assert outcome.total_slashed == 200
        assert set(outcome.ejected) == set(keys[:2])
        assert not outcome.spared
        assert pool.eligible_count() == 1
        assert pool.stake_of(keys[0]) == 0 and pool.stake_of(keys[1]) == 0
        assert pool.stake_of(keys[2]) == 100

    def test_partial_fraction_keeps_remainder_unbonding(self):
        pool, keys = self.make_pool([100])
        before = pool.locked_total()
        outcome = apply_accountability_slash(
            pool, keys, fraction=Fraction(1, 2), min_live=0)
        assert outcome.conserves_stake()
        assert outcome.total_slashed == 50
        # Ejected: the surviving half sits in the unbonding queue, not
        # the bond, so the offender can never re-enter selection.
        assert pool.stake_of(keys[0]) == 0
        assert pool.locked_total() == before - 50

    def test_liveness_floor_spares_the_last_candidates(self):
        pool, keys = self.make_pool([100, 100, 100])
        outcome = apply_accountability_slash(
            pool, keys, fraction=Fraction(1, 1), min_live=1)
        assert outcome.conserves_stake()
        assert len(outcome.ejected) == 2
        assert len(outcome.spared) == 1
        assert pool.eligible_count() == 1
        spared = outcome.spared[0]
        assert pool.stake_of(spared) == 100  # spared keeps its bond

    def test_deterministic_regardless_of_input_order(self):
        first_pool, keys = self.make_pool([100, 100, 100, 100])
        second_pool, _ = self.make_pool([100, 100, 100, 100])
        outcome_a = apply_accountability_slash(
            first_pool, keys, fraction=Fraction(1, 1), min_live=2)
        outcome_b = apply_accountability_slash(
            second_pool, list(reversed(keys)),
            fraction=Fraction(1, 1), min_live=2)
        assert outcome_a == outcome_b

    def test_slashing_a_stranger_is_a_noop(self):
        pool, keys = self.make_pool([100])
        stranger = keypair(9).public_key
        outcome = apply_accountability_slash(
            pool, [stranger], fraction=Fraction(1, 1), min_live=0)
        assert outcome.conserves_stake()
        assert outcome.total_slashed == 0
        assert pool.locked_total() == 100


# ----------------------------------------------------------------------
# Guest light client
# ----------------------------------------------------------------------


def guest_header(height, epoch, state_root, **overrides):
    fields = dict(
        height=height, prev_hash=Hash.of(b"prev"), timestamp=float(height),
        host_slot=height * 10, state_root=state_root,
        epoch_id=epoch.epoch_id, epoch_hash=epoch.canonical_hash(),
    )
    fields.update(overrides)
    return GuestBlockHeader(**fields)


def guest_update(header, keypairs, new_epoch=None):
    message = header.sign_message()
    return GuestClientUpdate(
        header=header,
        signatures={kp.public_key: kp.sign(message) for kp in keypairs},
        new_epoch=new_epoch,
    )


class TestGuestClientAccountability:
    def test_conflict_builds_a_verifiable_proof(self):
        epoch, keypairs = make_epoch()
        client = GuestLightClient(SCHEME, epoch)
        client.update(guest_update(
            guest_header(1, epoch, Hash.of(b"state-a")), keypairs))

        colluders = keypairs[:4]
        conflicting = guest_update(
            guest_header(1, epoch, Hash.of(b"state-b")), colluders)
        with pytest.raises(EvidenceError, match="client frozen"):
            client.update(conflicting)
        assert client.frozen
        assert len(client.equivocation_proofs) == 1

        proof = client.equivocation_proofs[0]
        # The proof convicts exactly the double-signing intersection,
        # and a fresh client of the same guest can verify it.
        watcher = GuestLightClient(SCHEME, epoch)
        offenders = watcher.register_accountability(proof)
        assert set(offenders) == {kp.public_key for kp in colluders}
        assert watcher.proven_offenders == set(offenders)

    def test_registration_rejects_unbound_sign_bytes(self):
        epoch, keypairs = make_epoch()
        proof = conflicting_proof(epoch, keypairs)
        # Re-bind one side to a different height: the sign-bytes no
        # longer commit to the height the proof claims.
        lifted = replace(proof, height=proof.height + 1)
        client = GuestLightClient(SCHEME, epoch)
        with pytest.raises(AccountabilityError, match="bind the claimed height"):
            client.register_accountability(lifted)

    def test_registration_rejects_untrusted_epoch(self):
        epoch, keypairs = make_epoch()
        other, _ = make_epoch(count=3, epoch_id=9)
        proof = conflicting_proof(epoch, keypairs)
        client = GuestLightClient(SCHEME, other)
        with pytest.raises(EvidenceError, match="never trusted"):
            client.register_accountability(proof)

    def test_proven_offenders_are_discounted_at_epoch_transition(self):
        epoch, keypairs = make_epoch()  # 5 x 100
        survivor = keypairs[4]
        colluders = keypairs[:4]
        proof = conflicting_proof(
            epoch, keypairs,
            first_signers=keypairs, second_signers=colluders)

        next_epoch = Epoch(
            epoch_id=1, validators={survivor.public_key: 100},
            quorum_stake=67)
        update = guest_update(
            guest_header(2, next_epoch, Hash.of(b"state-c")),
            [survivor], new_epoch=next_epoch)

        # Without the proof: the survivor holds 100 of 500 trusted
        # stake — not the >1/3 overlap — and the client wedges.
        wedged = GuestLightClient(SCHEME, epoch)
        with pytest.raises(ClientError, match="unindicted stake"):
            wedged.update(update)

        # With the slashed quorum registered, the overlap rule runs on
        # unindicted stake only (100 of 100) and the client follows the
        # replacement epoch.
        client = GuestLightClient(SCHEME, epoch)
        client.register_accountability(proof)
        client.update(update)
        assert client.epoch == next_epoch
        assert client.latest_height() == 2


# ----------------------------------------------------------------------
# Tendermint light client
# ----------------------------------------------------------------------


class TestCometAccountability:
    def make_valset(self, count=4, power=25):
        keypairs = [keypair(10 + i) for i in range(count)]
        valset = ValidatorSet(members=tuple(
            (kp.public_key, power) for kp in keypairs))
        return valset, keypairs

    def comet_header(self, valset, height, app_hash):
        return CometHeader(
            chain_id="comet", height=height, time=float(height),
            app_hash=app_hash, validators_hash=valset.canonical_hash(),
            next_validators_hash=valset.canonical_hash(),
        )

    def adopt(self, client, valset, header, keypairs):
        signatures = {kp.public_key: kp.sign(header.sign_bytes())
                      for kp in keypairs}
        client.apply_verified(header, set(signatures), valset,
                              signatures=signatures)

    def test_conflict_raises_equivocation_error_with_proof(self):
        valset, keypairs = self.make_valset()
        client = TendermintLightClient("comet", valset)
        self.adopt(client, valset,
                   self.comet_header(valset, 5, Hash.of(b"app-a")), keypairs)

        conflicting = self.comet_header(valset, 5, Hash.of(b"app-b"))
        with pytest.raises(EquivocationError) as excinfo:
            self.adopt(client, valset, conflicting, keypairs)
        assert client.frozen
        proof = excinfo.value.proof
        assert proof is not None
        assert proof.height == 5
        assert client.equivocation_proofs == [proof]

        # A fresh client that knows the validator set convicts the
        # intersection from the proof alone.
        watcher = TendermintLightClient("comet", valset)
        offenders = watcher.verify_accountability(proof, SCHEME)
        assert set(offenders) == {kp.public_key for kp in keypairs}

    def equivocation_proof(self):
        valset, keypairs = self.make_valset()
        client = TendermintLightClient("comet", valset)
        self.adopt(client, valset,
                   self.comet_header(valset, 5, Hash.of(b"app-a")), keypairs)
        with pytest.raises(EquivocationError) as excinfo:
            self.adopt(client, valset,
                       self.comet_header(valset, 5, Hash.of(b"app-b")),
                       keypairs)
        return valset, excinfo.value.proof

    def test_verification_rebinds_the_embedded_headers(self):
        valset, proof = self.equivocation_proof()
        watcher = TendermintLightClient("comet", valset)
        # Claiming a different height than the embedded headers carry
        # must fail: the binding is re-derived, not trusted.
        lifted = replace(proof, height=proof.height + 1)
        with pytest.raises(AccountabilityError, match="does not match the proof"):
            watcher.verify_accountability(lifted, SCHEME)

    def test_verification_rejects_unknown_validator_set(self):
        _, proof = self.equivocation_proof()
        other_valset, _ = self.make_valset(count=3)
        stranger = TendermintLightClient("comet", other_valset)
        with pytest.raises(AccountabilityError, match="never saw"):
            stranger.verify_accountability(proof, SCHEME)


# ----------------------------------------------------------------------
# On-chain prosecution, end to end
# ----------------------------------------------------------------------


def make_dep(seed, validators=4):
    return Deployment(DeploymentConfig(
        seed=seed,
        guest=GuestConfig(delta_seconds=90.0, min_stake_lamports=1),
        profiles=simple_profiles(validators),
        with_fisherman=True,
        tracing=True,
    ))


def forged_claim(dep, salt=b"fork-a"):
    """A colluding-quorum finalisation conflicting with the real chain:
    the latest finalised block's header with a rewritten state root,
    signed by the minimal quorum of its real signers."""
    contract = dep.contract
    block = None
    for height in range(contract.head.height, -1, -1):
        candidate = contract.block_at(height)
        if candidate.finalised:
            block = candidate
            break
    assert block is not None, "no finalised block to fork"
    epoch = contract.epochs[block.header.epoch_id]
    keypairs = {node.keypair.public_key: node.keypair
                for node in dep.validators}
    ranked = sorted(
        (pk for pk in block.signers if pk in keypairs),
        key=lambda pk: (-epoch.stake(pk), bytes(pk)))
    colluders, power = [], 0
    for public_key in ranked:
        colluders.append(public_key)
        power += epoch.stake(public_key)
        if power >= epoch.quorum_stake:
            break
    assert power >= epoch.quorum_stake, "real signers below quorum"
    forged = replace(block.header, state_root=Hash.of(salt))
    message = forged.sign_message()
    claim = FinalisationClaim(
        header=forged,
        signatures=tuple(sorted(
            ((pk, keypairs[pk].sign(message)) for pk in colluders),
            key=lambda item: bytes(item[0]))),
    )
    return claim, colluders


class TestOnChainProsecution:
    def test_forged_finalisation_is_slashed_on_chain(self):
        dep = make_dep(911)
        dep.establish_link()
        dep.run_for(30.0)
        claim, colluders = forged_claim(dep)
        locked_before = dep.contract.staking.locked_total()
        burned_before = dep.contract.burned_total

        dep.gossip.publish(FINALISATION_TOPIC, claim)
        dep.run_for(600.0)

        records = dep.contract.accountability_slashes
        assert len(records) == 1
        record = records[0]
        assert record["height"] == claim.header.height
        # The convicted intersection is attributable: > 1/3 of the
        # epoch's voting power (here, a full quorum).
        assert record["offender_stake"] * 3 > record["total_stake"]
        assert sorted(record["offenders"]) == sorted(
            pk.short() for pk in colluders)

        # Stake conservation on chain: the pool shrank by exactly the
        # slashed amount, which split into burn + prosecutor reward.
        assert dep.contract.staking.locked_total() == (
            locked_before - record["slashed"])
        assert record["burned"] + record["reward"] == record["slashed"]
        assert dep.contract.burned_total == burned_before + record["burned"]

        spared = set(record["spared"])
        for public_key in colluders:
            assert (dep.contract.staking.stake_of(public_key) == 0
                    or public_key.short() in spared)

        # The fisherman prosecuted once and notified the counterparty
        # client, which now discounts the offenders.
        assert [r.accepted for r in dep.fisherman.accountability_reports] == [True]
        assert {pk.short() for pk in dep.guest_client.proven_offenders} == set(
            record["offenders"])

    def test_duplicate_proof_is_rejected_on_chain(self):
        dep = make_dep(912)
        dep.establish_link()
        dep.run_for(30.0)
        claim, _ = forged_claim(dep)
        proof = dep.fisherman._build_finalisation_proof(claim)
        assert proof is not None

        results = []
        dep.relayer_api.submit_accountability_proof(
            proof, on_done=results.append)
        dep.run_for(120.0)
        assert [r.success for r in results] == [True]

        dep.relayer_api.submit_accountability_proof(
            proof, on_done=results.append)
        dep.run_for(120.0)
        assert [r.success for r in results] == [True, False]
        assert "already prosecuted" in results[1].error

    def test_prosecution_survives_a_host_blackout(self):
        dep = make_dep(913)
        dep.establish_link()
        dep.run_for(30.0)
        plan = FaultPlan().add("host_blackout", at=0.0, duration=60.0)
        ChaosInjector(dep, plan).arm()
        claim, _ = forged_claim(dep)

        dep.gossip.publish(FINALISATION_TOPIC, claim)
        dep.run_for(900.0)

        assert any(r.accepted for r in dep.fisherman.accountability_reports)
        assert len(dep.contract.accountability_slashes) == 1
        counters = dep.trace_report().counters
        # The proof only landed because the RetryPolicy kept the
        # prosecution alive across the blackout.
        assert counters.get("fisherman.retries", 0) >= 1

    def test_injected_quorum_equivocation_is_attributed(self):
        dep = make_dep(914)
        dep.establish_link()
        plan = FaultPlan().add("validator_quorum_equivocate", at=5.0,
                               duration=10.0, magnitude=3)
        injector = ChaosInjector(dep, plan).arm()
        dep.run_for(900.0)

        records = dep.contract.accountability_slashes
        assert records
        assert all(rec["offender_stake"] * 3 > rec["total_stake"]
                   for rec in records)
        counters = dep.trace_report().counters
        assert counters.get("chaos.quorum_equivocations.published") == 3
        assert counters.get("fisherman.equivocations.detected", 0) >= 1
        assert counters.get("guest.accountability.slashes", 0) >= 1

        spared = {short for rec in records for short in rec["spared"]}
        offenders = injector._quorum_offenders[0]
        assert offenders, "the fault seeded no colluding quorum"
        for public_key in offenders:
            assert (dep.contract.staking.stake_of(public_key) == 0
                    or public_key.short() in spared)
