"""The paper's headline claims, as an executable checklist.

One test per claim the abstract/§VII makes, each runnable against a
scaled-down deployment so the whole checklist stays fast.  The full-size
reproductions of the §V numbers live in benchmarks/; these tests pin the
*qualitative* claims the paper rests on.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.validators.profiles import simple_profiles


@pytest.fixture(scope="module")
def live():
    """A linked deployment with some traffic both ways."""
    dep = Deployment(DeploymentConfig(
        seed=181,
        guest=GuestConfig(delta_seconds=100.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
    ))
    guest_chan, cp_chan = dep.establish_link()
    dep.contract.bank.mint("alice", "GUEST", 1_000)
    dep.counterparty.bank.mint("carol", "PICA", 1_000)
    for _ in range(2):
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 10, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)

        def send():
            data = dep.counterparty.transfer.make_payload(cp_chan, "PICA", 10, "carol", "dave")
            dep.counterparty.ibc.send_packet(dep.counterparty.transfer_port, cp_chan, data, 0.0)
        dep.counterparty.submit(send)
        dep.run_for(300.0)
    return dep, guest_chan, cp_chan


class TestAbstractClaims:
    def test_guest_provides_ibc_without_modifying_the_host(self, live):
        """'enables IBC-based communication with the Solana blockchain'
        — the host simulator exposes only accounts/programs/fees; every
        IBC feature lives in the deployed Guest Contract."""
        dep, *_ = live
        # The host knows nothing of IBC: its public surface has no
        # client/channel/packet state, only the deployed program does.
        assert not hasattr(dep.host, "ibc")
        assert dep.contract.ibc.counters.packets_sent >= 2
        assert dep.contract.ibc.counters.packets_received >= 2

    def test_trustless_no_component_can_forge_packets(self, live):
        """'its relayers include cryptographic proofs... making it
        impossible to falsify packets' — a forged packet with a decoy
        proof is rejected by the receiving chain."""
        dep, guest_chan, cp_chan = live
        from repro.errors import PacketError
        from repro.ibc.identifiers import ChannelId, PortId
        from repro.ibc.packet import Packet
        forged = Packet(
            sequence=999, source_port=PortId("transfer"),
            source_channel=ChannelId(str(guest_chan)),
            destination_port=PortId("transfer"),
            destination_channel=ChannelId(str(cp_chan)),
            payload=b"counterfeit", timeout_timestamp=0.0,
        )
        dep.contract.ibc.store.set("decoy", b"x")
        proof = dep.contract.ibc.store.prove("decoy")
        with pytest.raises(PacketError):
            dep.counterparty.ibc.recv_packet(forged, proof, dep.guest_client.latest_height())


class TestSection3Claims:
    def test_provable_storage_bounded_by_inflight_state(self, live):
        """§III-A: 'the size [of the] provable storage depends on the
        number of open channels and packets in flight only'."""
        dep, *_ = live
        # All traffic settled: live state is a fixed small footprint,
        # regardless of the packets processed.
        assert dep.contract.state_usage_bytes() < 32 * 1024

    def test_sealing_prevents_double_delivery(self, live):
        dep, guest_chan, cp_chan = live
        assert dep.contract.ibc.counters.packets_received == 2
        assert dep.contract.ibc.counters.double_deliveries_rejected == 0
        # Replay the first delivered packet directly at the module level.
        from repro.errors import DoubleDeliveryError, SealedNodeError
        from repro.ibc import commitment as paths
        prefix = paths.receipt_prefix("transfer", guest_chan)
        try:
            present = dep.contract.ibc.store.contains_seq(prefix, 0)
        except SealedNodeError:
            present = True  # sealed: exactly the §III-A guard
        assert present

    def test_guest_inherits_host_liveness(self, live):
        """§III: the guest progresses exactly as fast as the host lets
        it — blocks carry host slots and host timestamps."""
        dep, *_ = live
        for block in dep.contract.blocks[1:]:
            assert 0 < block.header.host_slot <= dep.host.slot
            assert block.header.timestamp <= dep.sim.now


class TestSection7Claims:
    def test_all_required_ibc_features_present(self, live):
        """§VII: 'provides all required IBC features — including provable
        storage, light client support, and block introspection'."""
        dep, *_ = live
        # Provable storage: a verifiable membership proof.
        from repro.trie import verify_membership
        store = dep.contract.ibc.store
        store.set("probe", b"value")
        assert verify_membership(store.root_hash, store.prove("probe"))
        # Light client support: the counterparty follows the guest...
        assert dep.guest_client.latest_height() > 0
        # ...and the guest follows the counterparty.
        assert dep.contract.counterparty_client.latest_height() > 0
        # Block introspection: the contract can serve any past block and
        # its state (what NEAR lacks per §II/§VI-D).
        for height in range(dep.contract.head.height + 1):
            block = dep.contract.block_at(height)
            assert dep.contract.state_view(height).root_hash == block.header.state_root

    def test_minimal_overhead_claim(self, live):
        """§VII: 'adding this interoperability layer introduces minimal
        overhead' — guest latency is seconds on top of the host, not
        minutes; IBC reports ~1 minute per packet (§II)."""
        dep, *_ = live
        finalised = [b for b in dep.contract.blocks[1:] if b.finalised_at]
        assert finalised
        delays = [b.finalised_at - b.generated_at for b in finalised]
        assert sorted(delays)[len(delays) // 2] < 15.0  # median well under a minute
