"""Property tests bounding proof shape and size.

Proof size is an economic quantity in this system (it decides how many
1232-byte host transactions a delivery needs), so its bounds are worth
pinning: steps never exceed the key's nibble length, serialized size is
linear in the step count, and growth with the store is logarithmic.
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trie import SealableTrie
from repro.trie.proof import BranchStep, ExtensionStep

keys = st.binary(min_size=1, max_size=8).map(lambda b: hashlib.sha256(b).digest())


@given(st.sets(keys, min_size=1, max_size=60), st.data())
def test_steps_bounded_by_key_nibbles(key_set, data):
    trie = SealableTrie()
    for key in key_set:
        trie.set(key, key[:8])
    probe = data.draw(st.sampled_from(sorted(key_set)))
    proof = trie.prove(probe)
    # A 32-byte key has 64 nibbles; every step consumes at least one.
    assert len(proof.steps) <= 64
    consumed = sum(
        len(step.path) if isinstance(step, ExtensionStep) else 1
        for step in proof.steps
    )
    assert consumed + len(proof.leaf_path) == 64


@given(st.sets(keys, min_size=2, max_size=60), st.data())
def test_proof_bytes_linear_in_branch_steps(key_set, data):
    trie = SealableTrie()
    for key in key_set:
        trie.set(key, b"v")
    probe = data.draw(st.sampled_from(sorted(key_set)))
    proof = trie.prove(probe)
    branch_steps = sum(1 for s in proof.steps if isinstance(s, BranchStep))
    size = len(proof.to_bytes())
    # Sparse wire format: a branch step carries a 2-byte occupancy bitmap
    # plus 32 B per *non-zero* sibling (at most 15), so it costs between
    # 34 B (two-child branch) and ~485 B (full branch) plus framing.
    assert size <= 600 * branch_steps + 250
    assert size >= 34 * branch_steps


@settings(deadline=None)
@given(st.integers(min_value=2, max_value=5))
def test_logarithmic_growth(scale_power):
    """Growing the store 16x should add roughly one branch step."""
    def depth(entries: int) -> int:
        trie = SealableTrie()
        target = None
        for index in range(entries):
            key = hashlib.sha256(b"log" + index.to_bytes(8, "big")).digest()
            trie.set(key, b"v")
            if index == 0:
                target = key
        return sum(1 for s in trie.prove(target).steps if isinstance(s, BranchStep))

    small = depth(16 ** (scale_power - 1))
    large = depth(16 ** scale_power)
    assert 0 <= large - small <= 3


@given(st.sets(keys, min_size=1, max_size=40), keys)
def test_absence_proofs_no_bigger_than_membership(key_set, probe):
    if probe in key_set:
        return
    trie = SealableTrie()
    for key in key_set:
        trie.set(key, b"v")
    absence = trie.prove_absence(probe)
    longest_membership = max(
        len(trie.prove(key).to_bytes()) for key in key_set
    )
    # Absence terminates at (or above) where a membership proof would:
    # allow evidence overhead (a full 16-hash branch is 512 B + framing).
    assert len(absence.to_bytes()) <= longest_membership + 600
