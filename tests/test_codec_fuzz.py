"""Hypothesis fuzzing of every wire codec: round-trips and rejection of
mutated bytes.

Anything that crosses a chain boundary gets fuzzed here: packets, acks,
ICS-20 payloads, handshake datagrams, light-client updates, buffered
packet messages and self-client states.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.guest.instructions import BufferedPacketMsg
from repro.ibc.apps.transfer import FungibleTokenPacketData
from repro.ibc.channel import ChannelEnd, ChannelOrder, ChannelState
from repro.ibc.connection import ConnectionEnd, ConnectionState
from repro.ibc.identifiers import ChannelId, ClientId, ConnectionId, PortId
from repro.ibc.packet import Acknowledgement, Packet
from repro.ibc.self_client import SelfClientState

identifiers = st.from_regex(r"[a-z0-9][a-z0-9\-]{1,20}[a-z0-9]", fullmatch=True)
ports = identifiers.map(PortId)
channels = identifiers.map(ChannelId)


packets = st.builds(
    Packet,
    sequence=st.integers(min_value=0, max_value=2**48),
    source_port=ports, source_channel=channels,
    destination_port=ports, destination_channel=channels,
    payload=st.binary(max_size=256),
    timeout_timestamp=st.integers(min_value=0, max_value=2**40).map(lambda v: v / 1000.0),
)


@given(packets)
def test_packet_roundtrip(packet):
    assert Packet.from_bytes(packet.to_bytes()) == packet


@given(packets, packets)
def test_distinct_packets_distinct_commitments(a, b):
    if a != b:
        assert a.commitment() != b.commitment()


@given(st.booleans(), st.binary(max_size=128))
def test_ack_roundtrip(success, result):
    ack = Acknowledgement(success=success, result=result)
    assert Acknowledgement.from_bytes(ack.to_bytes()) == ack


@given(st.text(max_size=40).filter(lambda s: "\x00" not in s),
       st.integers(min_value=0, max_value=2**60),
       st.text(max_size=20), st.text(max_size=20))
def test_ics20_payload_roundtrip(denom, amount, sender, receiver):
    data = FungibleTokenPacketData(denom, amount, sender, receiver)
    assert FungibleTokenPacketData.from_bytes(data.to_bytes()) == data


@given(st.binary(max_size=512), st.binary(max_size=512),
       st.integers(min_value=0, max_value=2**40), st.binary(max_size=64))
def test_buffered_packet_msg_roundtrip(packet_bytes, proof_bytes, height, ack):
    msg = BufferedPacketMsg(packet_bytes=packet_bytes, proof_bytes=proof_bytes,
                            proof_height=height, ack_bytes=ack)
    assert BufferedPacketMsg.from_bytes(msg.to_bytes()) == msg


@given(identifiers, st.integers(min_value=0, max_value=2**40), st.binary(max_size=48))
def test_self_client_state_roundtrip(chain_id, height, set_hash):
    state = SelfClientState(chain_id=chain_id, latest_height=height,
                            trusted_set_hash=set_hash)
    assert SelfClientState.from_bytes(state.to_bytes()) == state


@given(st.sampled_from(list(ConnectionState)), identifiers, identifiers,
       st.one_of(st.none(), identifiers))
def test_connection_end_roundtrip(state, client, cp_client, cp_conn):
    end = ConnectionEnd(
        state=state, client_id=ClientId(client),
        counterparty_client_id=ClientId(cp_client),
        counterparty_connection_id=ConnectionId(cp_conn) if cp_conn else None,
    )
    assert ConnectionEnd.from_bytes(end.to_bytes()) == end


@given(st.sampled_from(list(ChannelState)), st.sampled_from(list(ChannelOrder)),
       identifiers, identifiers, st.one_of(st.none(), identifiers))
def test_channel_end_roundtrip(state, order, conn, cp_port, cp_chan):
    end = ChannelEnd(
        state=state, order=order, connection_id=ConnectionId(conn),
        counterparty_port_id=PortId(cp_port),
        counterparty_channel_id=ChannelId(cp_chan) if cp_chan else None,
    )
    assert ChannelEnd.from_bytes(end.to_bytes()) == end


@given(packets, st.integers(min_value=0), st.randoms())
def test_mutated_packet_bytes_never_misparse(packet, position, rng):
    """A flipped byte either fails to parse or parses to a *different*
    packet — never silently to the same one with corrupted content."""
    wire = bytearray(packet.to_bytes())
    index = position % len(wire)
    original = wire[index]
    wire[index] = (original + 1 + rng.randrange(255)) % 256
    if wire[index] == original:
        return
    try:
        reparsed = Packet.from_bytes(bytes(wire))
    except (ValueError, Exception):
        return
    assert reparsed != packet or bytes(wire) == packet.to_bytes()
