"""Topology DSL validation and multi-guest isolation on one host."""

import pytest

from repro.errors import SimulationError
from repro.fabric import (
    CounterpartySpec,
    FabricDeployment,
    GuestSpec,
    LinkSpec,
    RouteSpec,
    TopologyConfig,
    build_fabric,
)
from repro.ibc.identifiers import ChannelId, PortId


class TestValidation:
    def test_needs_a_guest(self):
        with pytest.raises(SimulationError, match="at least one guest"):
            TopologyConfig(guests=()).validate()

    def test_duplicate_names_rejected(self):
        config = TopologyConfig(
            guests=(GuestSpec("g"),),
            counterparties=(CounterpartySpec("g"),),
        )
        with pytest.raises(SimulationError, match="duplicate chain names"):
            config.validate()

    def test_link_to_unknown_chain_rejected(self):
        config = TopologyConfig(guests=(GuestSpec("g"),),
                                links=(LinkSpec("g", "ghost"),))
        with pytest.raises(SimulationError, match="unknown chain"):
            config.validate()

    def test_self_loop_rejected(self):
        config = TopologyConfig(guests=(GuestSpec("g"),),
                                links=(LinkSpec("g", "g"),))
        with pytest.raises(SimulationError, match="self-loop"):
            config.validate()

    def test_duplicate_link_rejected(self):
        config = TopologyConfig(
            guests=(GuestSpec("g"), GuestSpec("h")),
            links=(LinkSpec("g", "h"), LinkSpec("h", "g")),
        )
        with pytest.raises(SimulationError, match="duplicate link"):
            config.validate()

    def test_cp_to_cp_link_rejected(self):
        config = TopologyConfig(
            guests=(GuestSpec("g"),),
            counterparties=(CounterpartySpec("x"), CounterpartySpec("y")),
            links=(LinkSpec("x", "y"),),
        )
        with pytest.raises(SimulationError, match="counterparty-to-counterparty"):
            config.validate()

    def test_second_cp_link_on_one_guest_rejected(self):
        config = TopologyConfig(
            guests=(GuestSpec("g"),),
            counterparties=(CounterpartySpec("x"), CounterpartySpec("y")),
            links=(LinkSpec("g", "x"), LinkSpec("g", "y")),
        )
        with pytest.raises(SimulationError, match="at most one counterparty"):
            config.validate()

    def test_route_must_follow_links(self):
        config = TopologyConfig(
            guests=(GuestSpec("g"), GuestSpec("m"), GuestSpec("h")),
            links=(LinkSpec("g", "m"),),
            routes=(RouteSpec("r", ("g", "m", "h")),),
        )
        with pytest.raises(SimulationError, match="has no link"):
            config.validate()

    def test_route_cannot_transit_counterparty(self):
        config = TopologyConfig(
            guests=(GuestSpec("g"), GuestSpec("h")),
            counterparties=(CounterpartySpec("cp"),),
            links=(LinkSpec("g", "cp"), LinkSpec("cp", "h")),
            routes=(RouteSpec("r", ("g", "cp", "h")),),
        )
        with pytest.raises(SimulationError, match="cannot transit counterparty"):
            config.validate()

    def test_route_needs_forwarding_intermediates(self):
        config = TopologyConfig(
            guests=(GuestSpec("a"), GuestSpec("m", forwarding=False),
                    GuestSpec("b")),
            links=(LinkSpec("a", "m"), LinkSpec("m", "b")),
            routes=(RouteSpec("r", ("a", "m", "b")),),
        )
        with pytest.raises(SimulationError, match="forwarding disabled"):
            config.validate()

    def test_star_constructor_validates(self):
        config = TopologyConfig.star(4)
        config.validate()
        assert len(config.guests) == 4
        assert len(config.links) == 4
        assert config.counterparty_names() == {"picasso-1"}

    def test_chain_of_constructor_builds_route(self):
        config = TopologyConfig.chain_of(("cp-a", "g0", "g1", "cp-b"))
        config.validate()
        assert config.guest_names() == {"g0", "g1"}
        assert config.counterparty_names() == {"cp-a", "cp-b"}
        assert config.routes[0].hops == ("cp-a", "g0", "g1", "cp-b")


@pytest.fixture(scope="module")
def star2():
    """One 2-guest hub-and-spoke fabric, links established, with a
    transfer landed on each guest (shared across this module's reads)."""
    dep = build_fabric(TopologyConfig.star(2, seed=21))
    cp = dep.counterparties["picasso-1"]
    cp.bank.mint("alice", "uatom", 1_000_000)
    for name in dep.guests:
        link = dep.link_between(name, "picasso-1")
        cp_chan = ChannelId(link.channels["picasso-1"])

        def send(cp_chan=cp_chan, user=str(dep.user[name])):
            payload = cp.transfer.make_payload(
                cp_chan, "uatom", 500, sender="alice", receiver=user)
            return cp.ibc.send_packet(PortId("transfer"), cp_chan,
                                      payload, 0.0)
        cp.submit(send)
    dep.run_for(240.0)
    # And one send per guest (the guest-side SEND_PACKET fee path).
    for name, guest in dep.guests.items():
        link = dep.link_between(name, "picasso-1")
        channel = ChannelId(link.channels[name])
        payload = guest.contract.transfer.make_payload(
            channel, f"transfer/{channel}/uatom", 100,
            sender=str(dep.user[name]), receiver=f"{name}-home")
        dep.user_api[name].send_packet("transfer", str(channel),
                                       payload, 0.0)
    dep.run_for(240.0)
    return dep


class TestTwoGuestIsolation:
    def test_both_guests_established_distinct_channels_on_cp(self, star2):
        chans = {str(dep_link.channels["picasso-1"])
                 for dep_link in star2.links}
        assert len(chans) == 2  # the hub sees two distinct channel ends

    def test_transfers_land_on_both_guests(self, star2):
        for name, guest in star2.guests.items():
            link = star2.link_between(name, "picasso-1")
            voucher = f"transfer/{link.channels[name]}/uatom"
            # 500 arrived, 100 sent home again by the fixture.
            assert guest.contract.bank.balance(
                str(star2.user[name]), voucher) == 400

    def test_state_accounts_are_disjoint(self, star2):
        contracts = [g.contract for g in star2.guests.values()]
        assert contracts[0].state_account != contracts[1].state_account
        assert contracts[0].treasury != contracts[1].treasury
        assert contracts[0].program_id != contracts[1].program_id

    def test_validator_keys_are_disjoint_across_guests(self, star2):
        cohorts = [
            {bytes(node.keypair.public_key) for node in g.validators}
            for g in star2.guests.values()
        ]
        assert not cohorts[0] & cohorts[1]

    def test_guest_events_tagged_with_own_chain_id(self, star2):
        names = set(star2.guests)
        assert names == {"guest-0", "guest-1"}
        for name, guest in star2.guests.items():
            assert guest.contract.chain_id == name

    def test_per_guest_fee_isolation(self, star2):
        """Each guest's ledger burnt fees into its own treasury; the
        other guest's cohort accounts never paid for it."""
        for name, guest in star2.guests.items():
            assert guest.contract.fees_collected > 0
        cohorts = {name: set(star2.cohort_addresses(name))
                   for name in star2.guests}
        assert not cohorts["guest-0"] & cohorts["guest-1"]

    def test_per_guest_compute_accounting(self, star2):
        for guest in star2.guests.values():
            assert guest.contract.compute_consumed > 0

    def test_conservation_across_the_star(self, star2):
        report = star2.conservation_checker().check()
        # The checker snapshots at construction; build a fresh one and
        # verify totals match the minted supply exactly.
        total = sum(
            amount for (addr, denom), amount
            in star2.counterparties["picasso-1"].bank.balances().items()
            if denom == "uatom" and not addr.startswith("escrow/")
        )
        vouchers = sum(
            g.contract.bank.balance(
                str(star2.user[name]),
                f"transfer/{star2.link_between(name, 'picasso-1').channels[name]}/uatom")
            for name, g in star2.guests.items()
        )
        assert report.ok
        assert total + vouchers == 1_000_000


class TestFabricDeploymentSurface:
    def test_chaos_duck_compatibility(self):
        dep = FabricDeployment(TopologyConfig.star(1, seed=3))
        assert dep.contract is dep.first_guest.contract
        assert dep.cranker is dep.first_guest.cranker
        assert len(dep.validators) == 4
        assert dep.relayer is dep.links[0].relayer
        keypair = dep.validator_keypair(1)  # simple_profiles are 1-based
        assert keypair is dep.first_guest.validators[0].keypair
        # The injector override hook.
        dep.relayer = "sentinel"
        assert dep.relayer == "sentinel"

    def test_egress_hop_requires_establishment(self):
        dep = FabricDeployment(TopologyConfig.chain_of(("cp-a", "g0", "g1")))
        with pytest.raises(SimulationError, match="no channel yet"):
            dep._egress_hop("g0", "g1")
