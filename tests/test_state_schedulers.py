"""Sealing schedulers (docs/STATE.md).

The scheduler decides *when* safe-to-seal entries are sealed; the
lagged-sealing rule decides *which* are safe.  Because sealing is
root-neutral, policy choice must be invisible to consensus: hosts
running different schedulers over the same traffic end on identical
roots, differing only in how many entries are still live.  Covered:

* drain/flush semantics and counters of each policy on a bare store;
* ``scheduler_from_name`` construction and rejection;
* host-level root-neutrality across policies over real relayed
  traffic (ProtoFabric), including the offered == sealed + pending
  conservation law;
* backwards compatibility of the ``seal_receipts`` flag.
"""

import pytest

from repro.ibc.host import IbcHost
from repro.state import (
    EagerScheduler,
    LazyScheduler,
    RentAwareScheduler,
    scheduler_from_name,
)
from repro.trie.store import ProvableStore
from repro.units import RENT_LAMPORTS_PER_BYTE_YEAR

from tests.helpers import ProtoFabric

PREFIX = "receipts/ports/transfer/channels/channel-0"


def offer_range(scheduler, count):
    for seq in range(count):
        scheduler.offer(PREFIX, seq)


def seeded_store(entries=0):
    store = ProvableStore()
    for seq in range(entries):
        store.set_seq(PREFIX, seq, b"\x01")
    return store


def drain_fully(scheduler, store):
    """The host's drain loop: seal batches until the policy is quiet."""
    sealed = []
    while True:
        due = scheduler.drain(store)
        if not due:
            return sealed
        for prefix, seq in due:
            store.seal_seq(prefix, seq)
        sealed.extend(due)


# ----------------------------------------------------------------------
# Policy semantics on a bare store
# ----------------------------------------------------------------------


class TestEager:
    def test_drains_everything_offered(self):
        store = seeded_store(10)
        scheduler = EagerScheduler()
        offer_range(scheduler, 10)
        sealed = drain_fully(scheduler, store)
        assert [seq for _, seq in sealed] == list(range(10))
        assert scheduler.pending_count() == 0
        assert scheduler.sealed == 10
        # Adjacent sealed leaves re-collapse into stubs, so the stub
        # count is positive but smaller than the entry count.
        assert 1 <= store.trie.sealed_count() <= 10
        assert store.storage_bytes() == 0

    def test_drain_batches_but_loop_terminates(self):
        store = seeded_store(200)
        scheduler = EagerScheduler()
        offer_range(scheduler, 200)
        first = scheduler.drain(store)
        assert len(first) == 64  # one batch, not the whole backlog
        for prefix, seq in first:
            store.seal_seq(prefix, seq)
        assert len(drain_fully(scheduler, store)) == 136


class TestLazy:
    def test_holds_until_batch_accumulates(self):
        store = seeded_store(10)
        scheduler = LazyScheduler(batch=4)
        offer_range(scheduler, 3)
        assert scheduler.drain(store) == []
        assert scheduler.pending_count() == 3
        scheduler.offer(PREFIX, 3)
        assert len(scheduler.drain(store)) == 4
        assert scheduler.pending_count() == 0

    def test_flush_releases_a_partial_batch(self):
        scheduler = LazyScheduler(batch=64)
        offer_range(scheduler, 5)
        assert scheduler.drain(seeded_store(5)) == []
        assert len(scheduler.flush()) == 5
        assert scheduler.pending_count() == 0
        assert scheduler.offered == scheduler.sealed == 5

    def test_batch_must_be_positive(self):
        with pytest.raises(ValueError, match="batch"):
            LazyScheduler(batch=0)


class TestRentAware:
    def test_under_budget_never_seals(self):
        store = seeded_store(20)
        rent = store.storage_bytes() * RENT_LAMPORTS_PER_BYTE_YEAR
        scheduler = RentAwareScheduler(annual_budget_lamports=int(rent) + 1)
        offer_range(scheduler, 20)
        assert scheduler.drain(store) == []
        assert scheduler.pending_count() == 20
        assert scheduler.sealed == 0

    def test_over_budget_seals_until_back_under(self):
        # More entries than one drain batch, so the budget re-check
        # between batches is what stops the sealing.
        store = seeded_store(200)
        half = store.storage_bytes() // 2
        budget = int(half * RENT_LAMPORTS_PER_BYTE_YEAR)
        scheduler = RentAwareScheduler(annual_budget_lamports=budget)
        offer_range(scheduler, 200)
        drain_fully(scheduler, store)
        assert scheduler.projected_rent(store) <= budget
        # It stopped as soon as it was back under: something is pending.
        assert scheduler.pending_count() > 0
        assert scheduler.offered == scheduler.sealed + scheduler.pending_count()

    def test_zero_budget_behaves_eagerly(self):
        store = seeded_store(6)
        scheduler = RentAwareScheduler(annual_budget_lamports=0)
        offer_range(scheduler, 6)
        drain_fully(scheduler, store)
        assert scheduler.pending_count() == 0
        assert scheduler.sealed == 6
        assert store.storage_bytes() == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            RentAwareScheduler(annual_budget_lamports=-1)


class TestFactory:
    def test_builds_each_policy(self):
        assert isinstance(scheduler_from_name("eager"), EagerScheduler)
        lazy = scheduler_from_name("lazy", batch=7)
        assert isinstance(lazy, LazyScheduler) and lazy.batch == 7
        rent = scheduler_from_name("rent-aware", annual_budget_lamports=10)
        assert isinstance(rent, RentAwareScheduler)
        assert rent.annual_budget_lamports == 10

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown sealing scheduler"):
            scheduler_from_name("clairvoyant")


# ----------------------------------------------------------------------
# Host-level root-neutrality over real relayed traffic
# ----------------------------------------------------------------------


def run_traffic(scheduler, packets=24):
    """B sends ``packets`` transfers to A; A's host runs ``scheduler``."""
    fabric = ProtoFabric()
    a = fabric.add_chain("a")
    b = fabric.add_chain("b")
    if scheduler is not None:
        a.host.seal_scheduler = scheduler
    chan_a, chan_b = fabric.link("a", "b")
    b.bank.mint("carol", "PICA", 10 * packets)
    for _ in range(packets):
        packet = b.send_transfer(chan_b, "PICA", 10, "carol", "dave")
        fabric.deliver(b, packet)
    return a


class TestHostRootNeutrality:
    def test_every_policy_lands_on_the_same_root(self):
        schedulers = {
            "eager": EagerScheduler(),
            "lazy": LazyScheduler(batch=8),
            "rent-aware": RentAwareScheduler(annual_budget_lamports=0),
            "hoarder": RentAwareScheduler(annual_budget_lamports=10**15),
        }
        chains = {name: run_traffic(s) for name, s in schedulers.items()}
        roots = {name: bytes(chain.host.store.root_hash)
                 for name, chain in chains.items()}
        assert len(set(roots.values())) == 1

        # The policies really did behave differently: the hoarder kept
        # everything live, eager kept the least.
        live = {name: chain.host.store.storage_bytes()
                for name, chain in chains.items()}
        assert chains["hoarder"].host.store.trie.sealed_count() == 0
        assert chains["eager"].host.store.trie.sealed_count() >= 1
        assert live["eager"] <= live["lazy"] <= live["hoarder"]
        assert live["eager"] < live["hoarder"]
        # ...and each conserved its offers.
        for name, scheduler in schedulers.items():
            assert (scheduler.offered
                    == scheduler.sealed + scheduler.pending_count()), name

    def test_flush_converges_live_bytes_too(self):
        eager = run_traffic(EagerScheduler())
        hoarder_scheduler = RentAwareScheduler(annual_budget_lamports=10**15)
        hoarder = run_traffic(hoarder_scheduler)
        assert hoarder.host.store.storage_bytes() > eager.host.store.storage_bytes()
        for prefix, seq in hoarder_scheduler.flush():
            hoarder.host.store.seal_seq(prefix, seq)
        assert (bytes(hoarder.host.store.root_hash)
                == bytes(eager.host.store.root_hash))
        assert (hoarder.host.store.trie.sealed_count()
                == eager.host.store.trie.sealed_count())


# ----------------------------------------------------------------------
# seal_receipts backwards compatibility
# ----------------------------------------------------------------------


class TestBackCompat:
    def test_seal_receipts_true_defaults_to_eager(self):
        host = IbcHost("guest", seal_receipts=True)
        assert isinstance(host.seal_scheduler, EagerScheduler)
        assert host.seal_receipts

    def test_seal_receipts_false_means_no_scheduler(self):
        host = IbcHost("guest", seal_receipts=False)
        assert host.seal_scheduler is None
        assert not host.seal_receipts

    def test_explicit_scheduler_implies_sealing(self):
        scheduler = LazyScheduler(batch=4)
        host = IbcHost("guest", seal_scheduler=scheduler)
        assert host.seal_scheduler is scheduler
        assert host.seal_receipts
