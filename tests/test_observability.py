"""Unit tests for the observability layer (docs/OBSERVABILITY.md).

Covers the recording half (Tracer / NullTracer), the read half
(TraceReport), and the kernel/host integration points.
"""

import json

import pytest

from repro.observability import NULL_TRACER, NullTracer, TraceReport, Tracer
from repro.sim.kernel import Simulation


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clocked():
    clock = FakeClock()
    tracer = Tracer()
    tracer.bind(clock)
    return clock, tracer


class TestSpans:
    def test_handle_span_measures_clock_interval(self, clocked):
        clock, tracer = clocked
        clock.t = 2.0
        span = tracer.span("work", actor="tester")
        clock.t = 5.5
        span.end()
        (record,) = tracer.spans
        assert record.name == "work"
        assert record.actor == "tester"
        assert record.start == 2.0
        assert record.end == 5.5
        assert record.duration == 3.5

    def test_span_as_context_manager(self, clocked):
        clock, tracer = clocked
        with tracer.span("block"):
            clock.t = 1.0
        assert tracer.spans[0].duration == 1.0

    def test_double_end_keeps_first_close(self, clocked):
        clock, tracer = clocked
        span = tracer.span("once")
        clock.t = 1.0
        span.end()
        clock.t = 9.0
        span.end()
        assert tracer.spans[0].end == 1.0

    def test_keyed_begin_finish_across_callbacks(self, clocked):
        clock, tracer = clocked
        tracer.begin("packet.block_wait", key=7)
        clock.t = 3.2
        tracer.finish("packet.block_wait", key=7, height=12)
        (record,) = tracer.spans
        assert record.key == 7
        assert record.duration == 3.2
        assert record.attrs["height"] == 12

    def test_finish_unknown_key_is_silent_noop(self, clocked):
        _, tracer = clocked
        tracer.finish("never.begun", key="ghost")
        assert tracer.spans == []

    def test_same_name_different_keys_are_independent(self, clocked):
        clock, tracer = clocked
        tracer.begin("wait", key="a")
        clock.t = 1.0
        tracer.begin("wait", key="b")
        clock.t = 4.0
        tracer.finish("wait", key="a")
        clock.t = 6.0
        tracer.finish("wait", key="b")
        by_key = {record.key: record.duration for record in tracer.spans}
        assert by_key == {"a": 4.0, "b": 5.0}

    def test_rebegin_abandons_open_interval(self, clocked):
        clock, tracer = clocked
        tracer.begin("retry", key=1)
        clock.t = 2.0
        tracer.begin("retry", key=1)
        clock.t = 3.0
        tracer.finish("retry", key=1)
        first, second = tracer.spans
        assert first.end is None           # abandoned, visible as open
        assert second.duration == 1.0

    def test_parent_links_build_a_tree(self, clocked):
        _, tracer = clocked
        parent = tracer.span("outer")
        child = tracer.span("inner", parent=parent)
        report = tracer.report()
        assert report.children(parent.record) == [child.record]
        assert child.record.parent_id == parent.record.span_id


class TestMetrics:
    def test_counters_are_monotonic(self, clocked):
        _, tracer = clocked
        tracer.count("hits")
        tracer.count("hits", 4)
        assert tracer.counters["hits"] == 5

    def test_histograms_keep_raw_samples(self, clocked):
        _, tracer = clocked
        for value in (3.0, 1.0, 2.0):
            tracer.observe("lat", value)
        assert tracer.histograms["lat"] == [3.0, 1.0, 2.0]

    def test_gauges_record_time_value_pairs(self, clocked):
        clock, tracer = clocked
        tracer.gauge("depth", 10)
        clock.t = 4.0
        tracer.gauge("depth", 3)
        assert tracer.gauges["depth"] == [(0.0, 10), (4.0, 3)]


class TestNullTracer:
    def test_all_probes_are_noops(self):
        tracer = NullTracer()
        span = tracer.span("x", key=1, actor="a")
        span.end(attr=1)
        with tracer.begin("y", key=2):
            pass
        tracer.finish("y", key=2)
        tracer.count("c")
        tracer.observe("h", 1.0)
        tracer.gauge("g", 2.0)
        report = tracer.report()
        assert report.spans == [] and report.counters == {}
        assert report.render() == "(trace empty)"

    def test_shared_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_simulation_defaults_to_null_tracer(self):
        assert Simulation(seed=1).trace is NULL_TRACER


class TestTraceReport:
    def _report(self):
        clock = FakeClock()
        tracer = Tracer()
        tracer.bind(clock)
        for sequence, (start, mid, end) in enumerate(
            [(0.0, 1.0, 3.0), (2.0, 4.0, 8.0), (5.0, 5.5, 7.0)]
        ):
            clock.t = start
            tracer.begin("packet.block_wait", key=sequence)
            clock.t = mid
            tracer.finish("packet.block_wait", key=sequence)
            tracer.begin("packet.quorum_wait", key=sequence)
            clock.t = end
            tracer.finish("packet.quorum_wait", key=sequence)
        clock.t = 9.0
        tracer.begin("packet.block_wait", key=99)   # left open
        tracer.count("guest.packets.sent", 3)
        for fee in (10.0, 20.0, 30.0, 40.0):
            tracer.observe("send.fee.bundle", fee)
        tracer.gauge("host.mempool.depth", 5)
        return tracer.report()

    def test_durations_exclude_open_spans(self):
        report = self._report()
        assert report.durations("packet.block_wait") == [1.0, 2.0, 0.5]
        assert len(report.open_spans()) == 1

    def test_span_summary_digest(self):
        report = self._report()
        digest = report.span_summary("packet.quorum_wait")
        assert digest.count == 3
        assert digest.p50 == 2.0
        assert digest.maximum == 4.0

    def test_trace_groups_by_key_in_start_order(self):
        report = self._report()
        trace = report.trace(1)
        assert [record.name for record in trace] == [
            "packet.block_wait", "packet.quorum_wait",
        ]
        assert trace[0].start <= trace[1].start

    def test_counter_and_histogram_queries(self):
        report = self._report()
        assert report.counter("guest.packets.sent") == 3
        assert report.counter("missing") == 0
        assert report.counter("missing", default=-1) == -1
        assert report.histogram_summary("send.fee.bundle").mean == 25.0
        assert report.histogram_stats("send.fee.bundle").mean == 25.0
        assert report.histogram("missing") == []

    def test_gauge_queries(self):
        report = self._report()
        assert report.gauge_series("host.mempool.depth") == [(9.0, 5)]
        assert report.gauge_summary("host.mempool.depth").count == 1

    def test_span_names_sorted_unique(self):
        report = self._report()
        assert report.span_names() == [
            "packet.block_wait", "packet.quorum_wait",
        ]

    def test_json_round_trip(self):
        report = self._report()
        parsed = json.loads(report.dumps(indent=2))
        assert parsed["counters"]["guest.packets.sent"] == 3
        assert len(parsed["spans"]) == len(report.spans)
        assert parsed["histograms"]["send.fee.bundle"] == [10.0, 20.0, 30.0, 40.0]

    def test_render_contains_all_sections(self):
        rendered = self._report().render()
        for heading in ("Spans", "Counters", "Histograms", "Gauges"):
            assert heading in rendered
        assert "packet.block_wait" in rendered

    def test_empty_digest_raises(self):
        report = TraceReport(spans=[], counters={}, histograms={}, gauges={})
        with pytest.raises(ValueError):
            report.span_summary("anything")


class TestKernelIntegration:
    def test_event_counters(self):
        sim = Simulation(seed=1, tracer=Tracer())
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        sim.run()
        report = sim.trace.report()
        assert report.counter("sim.events.scheduled") == 2
        assert report.counter("sim.events.dispatched") == 1
        assert report.counter("sim.events.cancelled") == 1

    def test_tracer_reads_simulated_clock(self):
        sim = Simulation(seed=1, tracer=Tracer())
        spans = []

        def open_span():
            spans.append(sim.trace.span("interval"))

        def close_span():
            spans[0].end()

        sim.schedule(1.0, open_span)
        sim.schedule(4.5, close_span)
        sim.run()
        assert sim.trace.spans[0].start == 1.0
        assert sim.trace.spans[0].duration == 3.5


class TestDeploymentIntegration:
    """End-to-end: a traced deployment records the packet trace tree."""

    @pytest.fixture(scope="class")
    def traced(self):
        from repro.deployment import Deployment, DeploymentConfig
        dep = Deployment(DeploymentConfig(seed=11, tracing=True))
        guest_chan, _ = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 10 ** 9)
        payload = dep.contract.transfer.make_payload(
            guest_chan, "GUEST", 10, "alice", "bob",
        )
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(600.0)
        return dep, dep.trace_report()

    def test_packet_phases_recorded(self, traced):
        _, report = traced
        for name in ("packet.block_wait", "packet.quorum_wait", "packet.relay"):
            durations = report.durations(name)
            assert durations, f"no completed {name} span"
            assert all(duration >= 0.0 for duration in durations)

    def test_packet_trace_tree_orders_phases(self, traced):
        _, report = traced
        sequence = report.spans_named("packet.block_wait")[0].key
        trace = report.trace(sequence)
        names = [record.name for record in trace]
        assert names.index("packet.block_wait") < names.index("packet.quorum_wait")
        assert names.index("packet.quorum_wait") < names.index("packet.relay")

    def test_host_and_guest_counters(self, traced):
        _, report = traced
        assert report.counter("guest.packets.sent") >= 1
        assert report.counter("relay.packets.to_counterparty") >= 1
        assert report.counter("guest.blocks.finalised") >= 1
        assert report.counter("host.tx.executed") > 0
        assert report.counter("sim.events.dispatched") > 0

    def test_host_histograms_and_gauges(self, traced):
        _, report = traced
        assert report.histogram_summary("host.fee_paid").count > 0
        assert report.histogram_summary("host.cu_consumed").count > 0
        assert report.gauge_series("host.mempool.depth")

    def test_untraced_deployment_records_nothing(self):
        from repro.deployment import Deployment, DeploymentConfig
        dep = Deployment(DeploymentConfig(seed=11, tracing=False))
        dep.run_for(10.0)
        assert dep.sim.trace is NULL_TRACER
        report = dep.trace_report()
        assert report.spans == [] and report.counters == {}
