"""End-to-end run under real RFC 8032 Ed25519.

The large simulations use the fast SimSig scheme (DESIGN.md §2); this
test validates that nothing in the protocol depends on SimSig's quirks
by running a complete link-establishment and transfer with the genuine
curve arithmetic.  Scaled down (4 guest validators, 12 counterparty
validators) because pure-Python Ed25519 costs milliseconds per
signature.
"""

import pytest

from repro.counterparty.chain import CounterpartyConfig
from repro.crypto.ed25519 import Ed25519Scheme
from repro.deployment import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.validators.profiles import simple_profiles


@pytest.fixture(scope="module")
def real_deployment():
    return Deployment(DeploymentConfig(
        seed=88,
        guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
        counterparty=CounterpartyConfig(validator_count=12),
        profiles=simple_profiles(4),
        scheme_factory=Ed25519Scheme,
    ))


class TestRealEd25519EndToEnd:
    def test_scheme_is_real(self, real_deployment):
        assert isinstance(real_deployment.scheme, Ed25519Scheme)

    def test_link_establishes(self, real_deployment):
        guest_chan, cp_chan = real_deployment.establish_link(max_seconds=3_600.0)
        assert str(guest_chan) == "channel-0"
        # The chunked updates verified real curve signatures.  (With a
        # 12-validator counterparty an individual update can transiently
        # miss the 2/3-power threshold and be retried by the relayer —
        # what matters is that verified updates carried the handshake.)
        updates = real_deployment.relayer.metrics.lc_updates
        successes = [u for u in updates if u.success]
        assert successes
        assert sum(u.signature_count for u in successes) > 10

    def test_transfer_round_trip(self, real_deployment):
        dep = real_deployment
        guest_chan = dep.relayer.guest_channel[1]
        cp_chan = dep.relayer.cp_channel[1]
        dep.contract.bank.mint("alice", "GUEST", 100)
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 40, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(240.0)
        voucher = dep.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
        assert dep.counterparty.bank.balance("bob", voucher) == 40
        assert dep.contract.ibc.counters.packets_acknowledged == 1

    def test_forged_signature_rejected_on_chain(self, real_deployment):
        """A signature over the right message by the wrong key must fail
        the host's precompile under the real scheme too."""
        dep = real_deployment
        from repro.guest import instructions as ins
        from repro.host.fees import BaseFee
        from repro.host.transaction import Instruction, SigVerify, Transaction

        forger = dep.scheme.keypair_from_seed(bytes([77]) * 32)
        victim = dep.validators[0].keypair
        head = dep.contract.head
        message = head.header.sign_message()
        forged = forger.sign(message)

        results = []
        tx = Transaction(
            payer=dep.user,
            instructions=(Instruction(
                dep.contract.program_id,
                (dep.contract.state_account,),
                ins.sign_block(head.height, victim.public_key, forged),
            ),),
            fee_strategy=BaseFee(),
            sig_verifies=(SigVerify(victim.public_key, message, forged),),
        )
        dep.host.submit(tx, on_result=results.append)
        dep.run_for(30.0)
        assert results and not results[0].success
        assert "signature verification failed" in results[0].error
