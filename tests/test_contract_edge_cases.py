"""Negative-path and edge-case tests for the Guest Contract's chunked
machinery, evidence handling and event payloads."""

import pytest

from repro import Deployment, DeploymentConfig
from repro.guest import instructions as ins
from repro.guest.config import GuestConfig
from repro.host.fees import BaseFee
from repro.host.transaction import Instruction, SigVerify, Transaction
from repro.validators.profiles import simple_profiles

from tests.test_guest_contract import run_tx


@pytest.fixture
def dep():
    return Deployment(DeploymentConfig(
        seed=71,
        guest=GuestConfig(delta_seconds=60.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
    ))


class TestChunkedLcUpdateGuards:
    def test_sig_batch_without_precompile_entries_rejected(self, dep):
        assert run_tx(dep, ins.chunk(5, 0, 1, b"header-ish")).success
        receipt = run_tx(dep, ins.lc_sig_batch(5))
        assert not receipt.success
        assert "no runtime-verified signatures" in receipt.error

    def test_finalize_with_incomplete_buffer_rejected(self, dep):
        assert run_tx(dep, ins.chunk(6, 0, 2, b"half")).success
        receipt = run_tx(dep, ins.lc_finalize(6))
        assert not receipt.success
        assert "chunks" in receipt.error
        # The failed finalize consumed the buffer... no: rollback restores
        # the program state, so the chunk is still there and retryable.
        assert run_tx(dep, ins.chunk(6, 1, 2, b"rest")).success

    def test_finalize_with_garbage_buffer_rejected(self, dep):
        assert run_tx(dep, ins.chunk(7, 0, 1, b"\xff" * 40)).success
        receipt = run_tx(dep, ins.lc_finalize(7))
        assert not receipt.success

    def test_wrong_message_signatures_filtered_at_finalize(self, dep):
        """Signatures verified by the runtime over the *wrong* message
        must not count toward the commit power."""
        from repro.lightclient.chunked import plan_update_chunks
        dep.run_for(30.0)  # let the counterparty produce blocks
        update = dep.counterparty.light_client_update()
        plan = plan_update_chunks(update, frozenset())

        buffer_id = 9_001
        for index, chunk_bytes in enumerate(plan.data_chunks):
            receipt = run_tx(dep, ins.chunk(buffer_id, index, len(plan.data_chunks), chunk_bytes))
            assert receipt.success

        # Credit signatures over a decoy message (runtime verifies them
        # fine — they are valid signatures, just not over sign-bytes).
        signer = dep.scheme.keypair_from_seed(bytes([3]) * 32)
        decoy = b"not-the-header-sign-bytes"
        entries = tuple(
            SigVerify(signer.public_key, decoy, signer.sign(decoy))
            for _ in range(3)
        )
        tx = Transaction(
            payer=dep.user,
            instructions=(Instruction(
                dep.contract.program_id, (dep.contract.state_account,),
                ins.lc_sig_batch(buffer_id),
            ),),
            fee_strategy=BaseFee(),
            sig_verifies=entries,
        )
        results = []
        dep.host.submit(tx, on_result=results.append)
        dep.run_for(30.0)
        assert results[0].success  # crediting is fine...

        receipt = run_tx(dep, ins.lc_finalize(buffer_id))
        assert not receipt.success  # ...but the power check fails
        assert "signed power" in receipt.error

    def test_buffers_isolated_per_payer(self, dep):
        from repro.host.accounts import Address
        from repro.units import sol_to_lamports
        other = Address.derive("other-uploader")
        dep.host.airdrop(other, sol_to_lamports(10.0))
        assert run_tx(dep, ins.chunk(11, 0, 1, b"mine")).success
        # A different payer cannot execute (or steal) the first payer's
        # buffer id — ids are namespaced by owner.
        receipt = run_tx(dep, ins.recv_exec(11), payer=other)
        assert not receipt.success
        assert "unknown buffer" in receipt.error


class TestEvidenceEdgeCases:
    def test_evidence_against_unstaked_key_rejected(self, dep):
        from repro.guest.block import sign_message
        nobody = dep.scheme.keypair_from_seed(bytes([44]) * 32)
        fingerprint = b"\x01" * 32
        message = sign_message(7, fingerprint)
        signature = nobody.sign(message)
        results = []
        dep.relayer_api.submit_evidence(
            offender=nobody.public_key, height=7, fingerprint=fingerprint,
            signature=signature, message=message, on_result=results.append,
        )
        dep.run_for(30.0)
        assert not results[0].success
        assert "no stake" in results[0].error

    def test_evidence_matching_real_block_rejected(self, dep):
        """An honest signature over the real block is not an offence."""
        from repro.guest.block import sign_message
        dep.run_for(5.0)
        validator = dep.validators[0].keypair
        genesis = dep.contract.blocks[0]
        fingerprint = genesis.header.fingerprint()
        message = sign_message(0, fingerprint)
        signature = validator.sign(message)
        results = []
        dep.relayer_api.submit_evidence(
            offender=validator.public_key, height=0, fingerprint=fingerprint,
            signature=signature, message=message, on_result=results.append,
        )
        dep.run_for(30.0)
        assert not results[0].success
        assert "no offence" in results[0].error

    def test_fisherman_reward_paid_from_treasury(self, dep):
        from repro.guest.block import sign_message
        offender = dep.validators[1].keypair
        fingerprint = b"\x77" * 32
        message = sign_message(3, fingerprint)
        signature = offender.sign(message)
        balance_before = dep.host.accounts.balance(dep.relayer_payer)
        results = []
        dep.relayer_api.submit_evidence(
            offender=offender.public_key, height=3, fingerprint=fingerprint,
            signature=signature, message=message, on_result=results.append,
        )
        dep.run_for(30.0)
        assert results[0].success
        gained = dep.host.accounts.balance(dep.relayer_payer) - balance_before
        assert gained > 0  # reward exceeded the fee paid


class TestEventPayloads:
    def test_new_block_event_carries_header(self, dep):
        events = []
        dep.host.subscribe("NewBlock", events.append)
        dep.run_for(120.0)  # Δ = 60 s: at least one empty block
        assert events
        header = events[0].payload["header"]
        assert header.height == events[0].payload["height"]
        assert header.fingerprint()  # well-formed

    def test_finalised_event_carries_signatures_for_the_light_client(self, dep):
        events = []
        dep.host.subscribe("FinalisedBlock", events.append)
        dep.run_for(150.0)
        assert events
        payload = events[0].payload
        header = payload["header"]
        signatures = payload["signatures"]
        # The signatures in the event must satisfy the counterparty's
        # light client directly (this is what the relayer forwards).
        epoch = dep.contract.epochs[header.epoch_id]
        message = header.sign_message()
        valid = [
            pk for pk, sig in signatures.items()
            if dep.scheme.verify(pk, message, sig)
        ]
        assert epoch.has_quorum(set(valid))
