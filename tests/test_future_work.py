"""Tests for the §VI extensions: self-destruction, adaptive fees,
rate-limited clients and host portability.

The paper lists these as future work; the reproduction implements them
so the design discussion is executable.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.guest import instructions as ins
from repro.guest.config import GuestConfig
from repro.host.chain import HostChain, HostConfig
from repro.host.fees import AdaptiveFee, BaseFee
from repro.host.profiles import HOST_PROFILES, near_like_profile, tron_like_profile
from repro.host.transaction import Instruction, Transaction
from repro.crypto.simsig import SimSigScheme
from repro.ibc.apps.transfer import Bank, RateLimiter, TransferApp
from repro.ibc.identifiers import PortId
from repro.sim import Simulation
from repro.units import sol_to_lamports
from repro.validators.profiles import simple_profiles

from tests.test_guest_contract import run_tx


def make_dep(seed=41, **guest_kw):
    guest_kw.setdefault("delta_seconds", 60.0)
    guest_kw.setdefault("min_stake_lamports", 1)
    return Deployment(DeploymentConfig(
        seed=seed,
        guest=GuestConfig(**guest_kw),
        profiles=simple_profiles(4),
    ))


class TestSelfDestruct:
    """§VI-A: the last-validator bank-run mitigation."""

    def test_disabled_by_default(self):
        dep = make_dep()
        dep.run_for(30.0)
        receipt = run_tx(dep, ins.self_destruct())
        assert not receipt.success
        assert "not enabled" in receipt.error

    def test_requires_inactivity(self):
        dep = make_dep(self_destruct_after_seconds=10_000.0)
        dep.run_for(120.0)  # blocks still flowing (Δ = 60 s)
        receipt = run_tx(dep, ins.self_destruct())
        assert not receipt.success
        assert "inactivity" in receipt.error

    def test_releases_all_stake_after_silence(self):
        # Every operator walked away (silent validators): the head can
        # never finalise again — the abandoned-chain scenario of §VI-A.
        import dataclasses
        profiles = [dataclasses.replace(p, silent=True) for p in simple_profiles(4)]
        dep = Deployment(DeploymentConfig(
            seed=43,
            guest=GuestConfig(
                delta_seconds=30.0, min_stake_lamports=1,
                self_destruct_after_seconds=500.0,
                unbonding_seconds=10_000.0,
            ),
            profiles=profiles,
        ))
        dep.run_for(700.0)
        assert dep.contract.head.height <= 1  # chain stalled near genesis

        receipt = run_tx(dep, ins.self_destruct())
        assert receipt.success, receipt.error
        assert dep.contract.halted

        # Every validator can now withdraw immediately, despite the
        # one-week unbonding configuration.
        validator = dep.validators[0]
        key = validator.keypair.public_key
        stake = dep.contract.staking.withdrawable(key, dep.sim.now)
        assert stake == validator.profile.stake

        # And the chain accepts nothing but stake recovery.
        receipt = run_tx(dep, ins.generate_block())
        assert not receipt.success
        assert "self-destructed" in receipt.error

        receipt = run_tx(dep, ins.withdraw_stake(key),
                         payer=validator.api.payer)
        assert receipt.success


class TestLcRateLimit:
    """§VI-C: bounding how fast the counterparty client can move."""

    def test_second_update_within_window_rejected(self):
        dep = make_dep(seed=44, lc_min_update_interval=600.0)
        dep.run_for(30.0)

        outcomes = []
        dep.relayer_api.submit_lc_update(
            dep.counterparty.light_client_update(), on_done=outcomes.append,
        )
        dep.run_for(90.0)
        assert outcomes[-1].success

        dep.run_for(60.0)  # well inside the 600 s window
        dep.relayer_api.submit_lc_update(
            dep.counterparty.light_client_update(), on_done=outcomes.append,
        )
        dep.run_for(90.0)
        assert not outcomes[-1].success

        dep.run_for(600.0)  # window passed
        dep.relayer_api.submit_lc_update(
            dep.counterparty.light_client_update(), on_done=outcomes.append,
        )
        dep.run_for(90.0)
        assert outcomes[-1].success


class TestTransferRateLimit:
    """§VI-C: capping inbound value per window."""

    def make_app(self, now):
        clock = lambda: now[0]
        bank = Bank()
        app = TransferApp(bank, PortId("transfer"),
                          rate_limiter=RateLimiter(1_000, 60.0, clock))
        return bank, app

    def recv(self, app, amount, channel="channel-0"):
        from repro.ibc.identifiers import ChannelId
        from repro.ibc.packet import Packet
        payload = FungiblePayload(amount)
        return app.on_recv(Packet(
            sequence=0, source_port=PortId("transfer"),
            source_channel=ChannelId("channel-9"),
            destination_port=PortId("transfer"),
            destination_channel=ChannelId(channel),
            payload=payload, timeout_timestamp=0.0,
        ))

    def test_within_budget_accepted(self):
        now = [0.0]
        bank, app = self.make_app(now)
        ack = self.recv(app, 400)
        assert ack.success
        assert bank.balance("rcv", app.voucher_denom("channel-0", "X")) == 400

    def test_over_budget_rejected_with_error_ack(self):
        now = [0.0]
        bank, app = self.make_app(now)
        assert self.recv(app, 800).success
        ack = self.recv(app, 300)  # 1100 > 1000
        assert not ack.success
        assert b"rate limit" in ack.result

    def test_window_slides(self):
        now = [0.0]
        bank, app = self.make_app(now)
        assert self.recv(app, 1_000).success
        assert not self.recv(app, 1).success
        now[0] = 61.0
        assert self.recv(app, 1_000).success

    def test_limiter_validates_config(self):
        import pytest
        from repro.errors import IbcError
        with pytest.raises(IbcError):
            RateLimiter(0, 60.0, lambda: 0.0)
        with pytest.raises(IbcError):
            RateLimiter(10, 0.0, lambda: 0.0)


def FungiblePayload(amount):
    from repro.ibc.apps.transfer import FungibleTokenPacketData
    return FungibleTokenPacketData("X", amount, "snd", "rcv").to_bytes()


class TestAdaptiveFee:
    """§VI-B: pricing to the observed congestion."""

    def test_price_scales_with_congestion(self):
        level = [0.0]
        fee = AdaptiveFee(lambda: level[0])
        low = fee.fee(1, 0, 1_400_000)
        level[0] = 1.0
        high = fee.fee(1, 0, 1_400_000)
        assert high > 10 * low

    def test_cheaper_than_fixed_priority_when_quiet(self):
        from repro.host.fees import PriorityFee
        fixed = PriorityFee(compute_unit_price=5_000_000)
        adaptive = AdaptiveFee(lambda: 0.1)
        assert adaptive.fee(1, 0, 1_400_000) < fixed.fee(1, 0, 1_400_000) / 5

    def test_end_to_end_on_chain(self):
        sim = Simulation(seed=46)
        chain = HostChain(sim, SimSigScheme(), HostConfig(
            base_congestion=0.2, diurnal_congestion=0.0, spike_probability=0.0,
        ))
        from repro.host.accounts import Address
        payer = Address.derive("adaptive-payer")
        chain.airdrop(payer, sol_to_lamports(100.0))

        class Sink:
            program_id = Address.derive("adaptive-sink")

            def execute(self, ctx, data):
                ctx.meter.charge(1_000)

        chain.deploy(Sink())
        fee = AdaptiveFee(lambda: chain.congestion_at(sim.now))
        results = []
        tx = Transaction(
            payer=payer,
            instructions=(Instruction(Sink.program_id, (), b"x"),),
            fee_strategy=fee, compute_budget=200_000,
        )
        chain.submit(tx, on_result=results.append)
        sim.run_until(30.0)
        assert results[0].success
        assert results[0].fee_paid > BaseFee().fee(1, 0, 200_000)


class TestHostPortability:
    """§VI-D: the same Guest Contract on differently-shaped hosts."""

    @pytest.mark.parametrize("profile_name", sorted(HOST_PROFILES))
    def test_link_and_transfer_on_every_host(self, profile_name):
        host_config = HOST_PROFILES[profile_name]()
        host_config.retain_blocks = 2_000
        dep = Deployment(DeploymentConfig(
            seed=47,
            guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
            host=host_config,
            profiles=simple_profiles(4),
        ))
        guest_chan, cp_chan = dep.establish_link(max_seconds=3_600.0)

        dep.contract.bank.mint("alice", "GUEST", 100)
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 50, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(300.0)
        voucher = dep.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
        assert dep.counterparty.bank.balance("bob", voucher) == 50

    def test_roomier_transactions_mean_fewer_chunks(self):
        """The Fig. 4 transaction count is a consequence of the host's
        envelope: a NEAR-sized transaction swallows the whole update."""
        results = {}
        for name, factory in (("solana", HOST_PROFILES["solana"]),
                              ("near-like", near_like_profile)):
            config = factory()
            config.retain_blocks = 2_000
            dep = Deployment(DeploymentConfig(
                seed=48,
                guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
                host=config,
                profiles=simple_profiles(4),
            ))
            dep.establish_link(max_seconds=3_600.0)
            updates = dep.relayer.metrics.lc_updates
            results[name] = sum(u.transaction_count for u in updates) / len(updates)
        assert results["near-like"] < results["solana"] / 5

    def test_tron_like_profile_shape(self):
        profile = tron_like_profile()
        assert profile.slot_seconds == 3.0
        assert profile.max_transaction_bytes > 1232
