"""Failure injection: outages of each off-chain actor, and recovery.

The paper's §III argues the guest blockchain degrades gracefully: the
relayer and cranker are permissionless and untrusted (an outage delays,
never corrupts), and validator outages stall finalisation only until
quorum returns (§V-C).  These tests inject each outage and verify both
the degradation and the recovery.

Originally these scenarios flipped actor flags by hand; they now drive
the same outages through the declarative `repro.chaos` FaultPlan API
(docs/CHAOS.md) while keeping the original assertions.  A relayer
outage is a ``relayer_crash`` fault (harsher than the old pause: it
also loses volatile state), a cranker outage a ``cranker_crash``, and
the mass validator outage one ``validator_crash`` per validator.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.chaos import ChaosInjector, FaultPlan
from repro.guest.config import GuestConfig
from repro.validators.profiles import simple_profiles


def make_dep(seed):
    return Deployment(DeploymentConfig(
        seed=seed,
        guest=GuestConfig(delta_seconds=90.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
    ))


def arm(dep, kind, duration, **kwargs):
    plan = FaultPlan(label=f"test-{kind}").add(kind, at=0.0,
                                               duration=duration, **kwargs)
    return ChaosInjector(dep, plan).arm()


class TestRelayerOutage:
    def test_packets_delayed_not_lost(self):
        dep = make_dep(161)
        guest_chan, cp_chan = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 1_000)

        arm(dep, "relayer_crash", duration=300.0)
        dep.run_for(1.0)                 # the fault fires
        assert dep.relayer.paused
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 100, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(290.0)

        voucher = dep.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
        # Down: the packet is committed and finalised on the guest but
        # never reaches the counterparty.
        assert dep.contract.ibc.counters.packets_sent == 1
        assert dep.counterparty.bank.balance("bob", voucher) == 0

        dep.run_for(300.0)               # injector restarted the relayer
        assert not dep.relayer.paused
        assert dep.counterparty.bank.balance("bob", voucher) == 100
        assert dep.contract.ibc.counters.packets_acknowledged == 1

    def test_cp_to_guest_queue_drains_after_outage(self):
        dep = make_dep(162)
        guest_chan, cp_chan = dep.establish_link()
        dep.counterparty.bank.mint("carol", "PICA", 1_000)
        arm(dep, "relayer_crash", duration=250.0)

        def send():
            data = dep.counterparty.transfer.make_payload(cp_chan, "PICA", 50, "carol", "dave")
            dep.counterparty.ibc.send_packet(dep.counterparty.transfer_port, cp_chan, data, 0.0)

        for _ in range(3):
            dep.counterparty.submit(send)
        dep.run_for(200.0)
        voucher = dep.contract.transfer.voucher_denom(guest_chan, "PICA")
        assert dep.relayer.paused
        assert dep.contract.bank.balance("dave", voucher) == 0

        dep.run_for(450.0)               # restarted at t=250; queue drains
        assert not dep.relayer.paused
        assert dep.contract.bank.balance("dave", voucher) == 150


class TestCrankerOutage:
    def test_blocks_stall_then_resume(self):
        dep = make_dep(163)
        dep.establish_link()
        arm(dep, "cranker_crash", duration=250.0)
        dep.run_for(1.0)
        assert dep.cranker.paused
        height_at_pause = dep.contract.head.height
        dep.contract.bank.mint("alice", "GUEST", 100)
        guest_chan = dep.relayer.guest_channel[1]
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 10, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(199.0)
        # Nobody cranks GenerateBlock: the commitment sits outside any
        # block (the state root moved but no block was generated).
        assert dep.contract.head.height == height_at_pause

        dep.run_for(170.0)               # the fault window closed at 250
        assert not dep.cranker.paused
        assert dep.contract.head.height > height_at_pause
        assert dep.contract.ibc.counters.packets_sent == 1

    def test_anyone_can_crank(self):
        """GenerateBlock is permissionless: with the regular cranker down,
        any funded account can step in (Alg. 1: "can be invoked by
        anyone")."""
        dep = make_dep(164)
        dep.establish_link()
        arm(dep, "cranker_crash", duration=600.0)   # down for the whole test
        dep.contract.bank.mint("alice", "GUEST", 100)
        guest_chan = dep.relayer.guest_channel[1]
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 10, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(60.0)
        assert dep.cranker.paused
        height_before = dep.contract.head.height

        results = []
        dep.user_api.generate_block(on_result=results.append)  # a user cranks
        dep.run_for(30.0)
        assert results[0].success
        assert dep.contract.head.height == height_before + 1


class TestValidatorMassOutage:
    def test_finalisation_stalls_and_recovers(self):
        """§V-C writ large: take every validator offline, the head sticks
        unfinalised; bring them back, the sweep finalises it."""
        dep = make_dep(165)
        dep.establish_link()
        plan = FaultPlan(label="mass-outage")
        for node in dep.validators:
            plan.add("validator_crash", at=0.0, duration=400.0,
                     target=str(node.profile.index))
        ChaosInjector(dep, plan).arm()

        dep.contract.bank.mint("alice", "GUEST", 100)
        guest_chan = dep.relayer.guest_channel[1]
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 10, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(300.0)
        stalled = dep.contract.head
        assert not stalled.finalised  # stalled mid-outage

        dep.run_for(400.0)  # outage over; sweeps catch up
        assert stalled.finalised
        finalisation_delay = stalled.finalised_at - stalled.generated_at
        assert finalisation_delay > 100.0  # a §V-C-style straggler block
        # The chain moved on after recovery.
        assert dep.contract.head.height >= stalled.height
