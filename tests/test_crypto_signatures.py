"""Unit tests for both signature schemes behind the shared interface."""

import pytest

from repro.crypto.ed25519 import Ed25519Scheme, seed_to_public_key, sign, verify
from repro.crypto.keys import PublicKey, Signature
from repro.crypto.simsig import SimSigScheme
from repro.errors import InvalidKeyError

# RFC 8032 test vector 1 (empty message).
RFC_SEED = bytes.fromhex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60")
RFC_PUBLIC = bytes.fromhex("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a")
RFC_SIG = bytes.fromhex(
    "e5564300c360ac729086e2cc806e828a"
    "84877f1eb8e5d974d873e06522490155"
    "5fb8821590a33bacc61e39701cf9b46b"
    "d25bf5f0595bbe24655141438e7a100b"
)

# RFC 8032 test vector 2 (one-byte message 0x72).
RFC2_SEED = bytes.fromhex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb")
RFC2_PUBLIC = bytes.fromhex("3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c")
RFC2_MSG = bytes.fromhex("72")
RFC2_SIG = bytes.fromhex(
    "92a009a9f0d4cab8720e820b5f642540"
    "a2b27b5416503f8fb3762223ebdb69da"
    "085ac1e43e15996e458f3613d0f11d8c"
    "387b2eaeb4302aeeb00d291612bb0c00"
)


class TestEd25519Rfc8032:
    def test_vector1_public_key(self):
        assert seed_to_public_key(RFC_SEED) == RFC_PUBLIC

    def test_vector1_signature(self):
        assert sign(RFC_SEED, b"") == RFC_SIG

    def test_vector1_verifies(self):
        assert verify(RFC_PUBLIC, b"", RFC_SIG)

    def test_vector2_public_key(self):
        assert seed_to_public_key(RFC2_SEED) == RFC2_PUBLIC

    def test_vector2_signature(self):
        assert sign(RFC2_SEED, RFC2_MSG) == RFC2_SIG

    def test_vector2_verifies(self):
        assert verify(RFC2_PUBLIC, RFC2_MSG, RFC2_SIG)

    def test_wrong_message_rejected(self):
        assert not verify(RFC_PUBLIC, b"tampered", RFC_SIG)

    def test_corrupted_signature_rejected(self):
        bad = bytearray(RFC_SIG)
        bad[0] ^= 1
        assert not verify(RFC_PUBLIC, b"", bytes(bad))

    def test_wrong_key_rejected(self):
        assert not verify(RFC2_PUBLIC, b"", RFC_SIG)

    def test_malformed_inputs_rejected(self):
        assert not verify(b"short", b"", RFC_SIG)
        assert not verify(RFC_PUBLIC, b"", b"short")

    def test_seed_length_enforced(self):
        with pytest.raises(InvalidKeyError):
            seed_to_public_key(b"short")


@pytest.fixture(params=["ed25519", "simsig"])
def scheme(request):
    if request.param == "ed25519":
        return Ed25519Scheme()
    return SimSigScheme()


class TestSchemeInterface:
    """Both schemes must behave identically through the interface."""

    def test_deterministic_keypair(self, scheme):
        seed = bytes(range(32))
        a = scheme.keypair_from_seed(seed)
        b = scheme.keypair_from_seed(seed)
        assert a.public_key == b.public_key

    def test_distinct_seeds_distinct_keys(self, scheme):
        a = scheme.keypair_from_seed(bytes(32))
        b = scheme.keypair_from_seed(bytes(31) + b"\x01")
        assert a.public_key != b.public_key

    def test_sign_verify_roundtrip(self, scheme):
        kp = scheme.keypair_from_seed(bytes(range(32)))
        sig = kp.sign(b"guest block 7")
        assert scheme.verify(kp.public_key, b"guest block 7", sig)

    def test_wrong_message_fails(self, scheme):
        kp = scheme.keypair_from_seed(bytes(range(32)))
        sig = kp.sign(b"message")
        assert not scheme.verify(kp.public_key, b"other", sig)

    def test_wrong_key_fails(self, scheme):
        kp1 = scheme.keypair_from_seed(bytes(range(32)))
        kp2 = scheme.keypair_from_seed(bytes(reversed(range(32))))
        sig = kp1.sign(b"message")
        assert not scheme.verify(kp2.public_key, b"message", sig)

    def test_corrupted_signature_fails(self, scheme):
        kp = scheme.keypair_from_seed(bytes(range(32)))
        sig = kp.sign(b"message")
        corrupted = bytearray(bytes(sig))
        corrupted[10] ^= 0xFF
        assert not scheme.verify(kp.public_key, b"message", Signature(bytes(corrupted)))

    def test_seed_length_enforced(self, scheme):
        with pytest.raises(InvalidKeyError):
            scheme.keypair_from_seed(b"too-short")


class TestSimSigIsolation:
    def test_unknown_public_key_fails(self):
        scheme = SimSigScheme()
        other = SimSigScheme()
        kp = scheme.keypair_from_seed(bytes(range(32)))
        sig = kp.sign(b"msg")
        # A different scheme instance has no registry entry for this key.
        assert not other.verify(kp.public_key, b"msg", sig)

    def test_value_types_reject_bad_lengths(self):
        with pytest.raises(ValueError):
            PublicKey(b"short")
        with pytest.raises(ValueError):
            Signature(b"short")
