"""Tests for the §VI-D BFT-time rule, including the manipulation bound."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.simsig import SimSigScheme
from repro.errors import GuestError
from repro.guest.bft_time import (
    TimeAttestation,
    attested_block_time,
    honest_time_bounds,
    weighted_median_time,
)
from repro.guest.epoch import Epoch


def make_validators(count, stakes=None):
    scheme = SimSigScheme()
    keys = [scheme.keypair_from_seed(bytes([9]) + i.to_bytes(4, "big") + bytes(27)).public_key
            for i in range(count)]
    stakes = stakes or [100] * count
    epoch = Epoch(
        epoch_id=0,
        validators=dict(zip(keys, stakes)),
        quorum_stake=sum(stakes) * 2 // 3 + 1,
    )
    return keys, epoch


class TestWeightedMedian:
    def test_odd_unanimous(self):
        keys, epoch = make_validators(3)
        attestations = [TimeAttestation(k, 100.0) for k in keys]
        assert weighted_median_time(attestations, epoch) == 100.0

    def test_simple_median(self):
        keys, epoch = make_validators(3)
        attestations = [
            TimeAttestation(keys[0], 10.0),
            TimeAttestation(keys[1], 20.0),
            TimeAttestation(keys[2], 1_000.0),
        ]
        assert weighted_median_time(attestations, epoch) == 20.0

    def test_stake_weighting(self):
        """A whale's clock dominates proportionally to its stake."""
        keys, epoch = make_validators(3, stakes=[600, 100, 100])
        attestations = [
            TimeAttestation(keys[0], 50.0),    # 600 stake
            TimeAttestation(keys[1], 10.0),
            TimeAttestation(keys[2], 90.0),
        ]
        assert weighted_median_time(attestations, epoch) == 50.0

    def test_non_validators_ignored(self):
        keys, epoch = make_validators(3)
        scheme = SimSigScheme()
        outsider = scheme.keypair_from_seed(bytes([8]) * 32).public_key
        attestations = [TimeAttestation(k, 100.0) for k in keys]
        attestations += [TimeAttestation(outsider, 10 ** 9)] * 5
        assert weighted_median_time(attestations, epoch) == 100.0

    def test_empty_raises(self):
        _, epoch = make_validators(3)
        with pytest.raises(GuestError):
            weighted_median_time([], epoch)


class TestMonotonicity:
    def test_normal_advance(self):
        keys, epoch = make_validators(3)
        attestations = [TimeAttestation(k, 200.0) for k in keys]
        assert attested_block_time(attestations, epoch, parent_time=100.0) == 200.0

    def test_clamped_when_behind_parent(self):
        keys, epoch = make_validators(3)
        attestations = [TimeAttestation(k, 50.0) for k in keys]
        result = attested_block_time(attestations, epoch, parent_time=100.0)
        assert result == pytest.approx(100.001)

    def test_strictly_increasing_chain(self):
        keys, epoch = make_validators(3)
        parent = 0.0
        for block_time in (10.0, 10.0, 9.0, 30.0):  # includes regressions
            attestations = [TimeAttestation(k, block_time) for k in keys]
            new = attested_block_time(attestations, epoch, parent)
            assert new > parent
            parent = new


class TestManipulationBound:
    """The §VI-D security claim: an adversary holding less than half of
    the participating stake cannot push the attested time outside the
    honest signers' clock range."""

    @given(
        honest_times=st.lists(st.floats(min_value=1_000.0, max_value=1_060.0),
                              min_size=3, max_size=8),
        evil_times=st.lists(st.floats(min_value=0.0, max_value=10_000.0),
                            min_size=1, max_size=5),
    )
    def test_minority_cannot_escape_honest_range(self, honest_times, evil_times):
        honest_count, evil_count = len(honest_times), len(evil_times)
        # Honest stake strictly dominates: 100 each vs 50 each for evil,
        # arranged so evil < half of participating stake.
        stakes = [100] * honest_count + [
            max(1, (100 * honest_count - 1) // (2 * evil_count) - 1)
        ] * evil_count
        keys, epoch = make_validators(honest_count + evil_count, stakes)
        honest_keys = set(keys[:honest_count])

        attestations = [
            TimeAttestation(k, t) for k, t in zip(keys[:honest_count], honest_times)
        ] + [
            TimeAttestation(k, t) for k, t in zip(keys[honest_count:], evil_times)
        ]
        median = weighted_median_time(attestations, epoch)
        low, high = honest_time_bounds(attestations, epoch, honest_keys)
        assert low <= median <= high

    def test_majority_can_lie(self):
        """Sanity check of the bound's tightness: at >= half stake the
        adversary does control the median."""
        keys, epoch = make_validators(2, stakes=[100, 100])
        attestations = [
            TimeAttestation(keys[0], 1_000.0),  # honest
            TimeAttestation(keys[1], 9_999.0),  # adversarial half
        ]
        median = weighted_median_time(attestations, epoch)
        assert median == 1_000.0  # lower median: still honest here...
        attestations.append(TimeAttestation(keys[1], 9_999.0))
        # ...but with any extra adversarial weight the median moves out.
        keys3, epoch3 = make_validators(3, stakes=[100, 100, 100])
        shifted = [
            TimeAttestation(keys3[0], 1_000.0),
            TimeAttestation(keys3[1], 9_999.0),
            TimeAttestation(keys3[2], 9_999.0),
        ]
        assert weighted_median_time(shifted, epoch3) == 9_999.0
