"""Relayer recovery: resume, crash/restart, and the bounded retry path.

`Relayer.resume` must be safe to call whatever the relayer was doing
when it went down — including while an LC hold-down retry timer is
pending (the docs/CHAOS.md hardening): the re-kick is guarded, so no
duplicate timer is armed and no queued packet is lost.  Crash/restart
must keep delivery exactly-once despite the rewound poll cursor, and a
failed BATCH_EXEC bundle must requeue its members through the bounded
retry path.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.chaos import ChaosInjector, FaultPlan
from repro.guest.config import GuestConfig
from repro.relayer.relayer import RelayerConfig
from repro.validators.profiles import simple_profiles


def make_dep(seed, relayer_config=None):
    return Deployment(DeploymentConfig(
        seed=seed,
        guest=GuestConfig(delta_seconds=90.0, min_stake_lamports=1),
        relayer=relayer_config or RelayerConfig(),
        profiles=simple_profiles(4),
        tracing=True,
    ))


def cp_send(dep, cp_chan, amount=50, sender="carol", receiver="dave"):
    def send():
        data = dep.counterparty.transfer.make_payload(
            cp_chan, "PICA", amount, sender, receiver)
        dep.counterparty.ibc.send_packet(
            dep.counterparty.transfer_port, cp_chan, data, 0.0)

    dep.counterparty.submit(send)


class TestResume:
    def test_resume_with_pending_holddown_arms_no_duplicate_timer(self):
        dep = make_dep(271, RelayerConfig(lc_update_min_seconds=120.0))
        guest_chan, cp_chan = dep.establish_link()
        dep.counterparty.bank.mint("carol", "PICA", 1_000)

        dep.relayer.paused = True
        cp_send(dep, cp_chan)
        dep.run_for(30.0)                 # the send commits; relayer down
        # Make "too soon since the last LC update" unambiguous so the
        # kick below must take the hold-down branch.
        dep.relayer._lc_last_finish = dep.sim.now
        assert dep.relayer._lc_holddown_handle is None

        dep.relayer.resume()
        dep.run_for(10.0)                 # poll finds the packet, kicks LC
        handle = dep.relayer._lc_holddown_handle
        assert handle is not None         # hold-down timer pending

        dep.relayer.resume()              # resume *again*, timer pending
        assert dep.relayer._lc_holddown_handle is handle  # not replaced

        dep.run_for(400.0)                # hold-down elapses, update runs
        voucher = dep.contract.transfer.voucher_denom(guest_chan, "PICA")
        assert dep.contract.bank.balance("dave", voucher) == 50  # not lost
        assert dep.relayer.metrics.packets_relayed_to_guest == 1  # exactly once
        assert dep.relayer._lc_holddown_handle is None

    def test_resume_is_idempotent_when_idle(self):
        dep = make_dep(272)
        guest_chan, cp_chan = dep.establish_link()
        dep.relayer.resume()
        dep.relayer.resume()
        dep.run_for(30.0)
        assert not dep.relayer.paused

    def test_resume_replays_missed_finalised_blocks(self):
        dep = make_dep(273)
        guest_chan, cp_chan = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 500)

        dep.relayer.paused = True
        payload = dep.contract.transfer.make_payload(
            guest_chan, "GUEST", 100, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(300.0)                # finalised while the relayer slept
        assert dep.relayer._missed_finalised  # events buffered, not lost

        dep.relayer.resume()
        dep.run_for(240.0)
        voucher = dep.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
        assert dep.counterparty.bank.balance("bob", voucher) == 100
        assert dep.relayer._missed_finalised == []


class TestCrashRestart:
    def test_crash_midflight_keeps_delivery_exactly_once(self):
        dep = make_dep(274)
        guest_chan, cp_chan = dep.establish_link()
        dep.counterparty.bank.mint("carol", "PICA", 1_000)
        for _ in range(5):
            cp_send(dep, cp_chan)
        dep.run_for(45.0)                 # some delivered, some in flight

        dep.relayer.crash()
        assert dep.relayer._bundle_queue == [] or not dep.relayer._bundle_queue
        assert dep.relayer._bundles_in_flight == 0
        dep.run_for(30.0)                 # dead: nothing moves

        dep.relayer.restart()
        dep.run_for(900.0)
        voucher = dep.contract.transfer.voucher_denom(guest_chan, "PICA")
        assert dep.contract.bank.balance("dave", voucher) == 250  # 5 x 50, once
        assert dep.relayer.metrics.crashes == 1
        counters = dep.trace_report().counters
        assert counters.get("relay.restarts") == 1

    def test_crash_midflight_guest_to_cp(self):
        dep = make_dep(275)
        guest_chan, cp_chan = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 500)
        for _ in range(3):
            payload = dep.contract.transfer.make_payload(
                guest_chan, "GUEST", 100, "alice", "bob")
            dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(60.0)

        dep.relayer.crash()
        dep.run_for(30.0)
        dep.relayer.restart()
        dep.run_for(900.0)

        voucher = dep.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
        assert dep.counterparty.bank.balance("bob", voucher) == 300
        assert dep.contract.ibc.counters.packets_acknowledged == 3

    def test_crash_after_cp_delivery_recovers_the_ack(self):
        """Regression: a guest->cp packet delivered to the counterparty
        just before a crash had its ack-return op wiped with the
        volatile queues — and nothing rescanned for it, so the guest's
        packet commitment never cleared.  `restart` now rescans the
        counterparty's written-ack log for outstanding commitments."""
        dep = make_dep(278)
        guest_chan, cp_chan = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 500)
        # Blackout stalls the guest-side ack ops in volatile queues
        # (delivery to the cp does not use the host, so it completes);
        # the crash then destroys them.
        plan = (FaultPlan(label="ack-loss")
                .add("host_blackout", at=10.0, duration=20.0)
                .add("relayer_crash", at=30.0, duration=15.0))
        ChaosInjector(dep, plan).arm()
        payload = dep.contract.transfer.make_payload(
            guest_chan, "GUEST", 100, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(400.0)

        voucher = dep.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
        assert dep.counterparty.bank.balance("bob", voucher) == 100
        assert dep.contract.ibc.counters.packets_acknowledged == 1
        counters = dep.trace_report().counters
        assert counters.get("relay.acks.recovered_cp", 0) >= 1

    def test_dead_incarnation_callbacks_are_dropped(self):
        dep = make_dep(276)
        dep.establish_link()
        incarnation = dep.relayer._incarnation
        dep.relayer.crash()
        assert dep.relayer._incarnation == incarnation + 1
        # A stale LC completion from before the crash must not corrupt
        # the new incarnation's state machine.
        dep.relayer._lc_busy = True
        from repro.guest.api import LcUpdateResult
        dep.relayer._lc_done(
            LcUpdateResult(height=1, transaction_count=0, signature_count=0,
                           total_fee=0, first_tx_time=0.0, last_tx_time=0.0,
                           success=False),
            generation=incarnation)
        assert dep.relayer._lc_busy      # stale result ignored
        counters = dep.trace_report().counters
        assert counters.get("relay.lc_updates.stale_dropped") == 1


class TestBatchRequeue:
    def test_failed_batch_requeues_through_bounded_retry(self):
        dep = make_dep(277, RelayerConfig(
            batch_max_packets=16, batch_flush_seconds=1.0))
        guest_chan, cp_chan = dep.establish_link()
        dep.counterparty.bank.mint("carol", "PICA", 1_000)
        for _ in range(8):
            cp_send(dep, cp_chan)

        # Step until the delivery ops are staged in a batch (the LC
        # update gating them has succeeded), then open a total-loss
        # window: the coalesced BATCH_EXEC bundle is dropped in transit
        # and must fall back to the per-packet bounded retry path.
        deadline = dep.sim.now + 600.0
        while not dep.relayer._pending_batch and dep.sim.now < deadline:
            dep.sim.step()
        assert len(dep.relayer._pending_batch) == 8
        plan = FaultPlan().add("host_tx_drop", at=0.0, duration=15.0,
                               probability=1.0)
        ChaosInjector(dep, plan).arm()
        dep.run_for(600.0)

        voucher = dep.contract.transfer.voucher_denom(guest_chan, "PICA")
        assert dep.contract.bank.balance("dave", voucher) == 400  # 8 x 50
        counters = dep.trace_report().counters
        assert counters.get("relay.batch.fallback", 0) >= 1
        assert counters.get("relay.batch.requeued", 0) == 8
        assert counters.get("relay.retries", 0) > 0     # backoff attempts
        assert counters.get("relay.retries.exhausted", 0) == 0
        assert counters.get("relay.redeliveries", 0) == 0  # never doubled
