"""Store snapshot semantics and full-store serialization vectors.

Two contracts the checkpoint layer leans on, pinned as tests:

* ``ProvableStore.snapshot()`` is a *frozen* view — mutations to the
  live store (including sealing, which swaps subtrees for stubs and
  populates cached hashes) never leak into a snapshot taken earlier;
* a full store dump is canonical — equal stores serialize to identical
  bytes, sealed stubs round-trip carrying their commitment, and the
  golden vectors below pin the format the way
  ``test_golden_vectors.py`` pins the commitment scheme.
"""

import hashlib

from repro.trie import SealableTrie, dump_store, dump_trie, load_store, load_trie
from repro.trie.store import ProvableStore


def populated_store():
    store = ProvableStore()
    for index in range(8):
        store.set(f"commitments/ch-0/{index}", f"value-{index}".encode())
    for sequence in range(4):
        store.set_seq("acks/ch-0", sequence, f"ack-{sequence}".encode())
    return store


class TestSnapshotCopySemantics:
    def test_snapshot_is_frozen_under_writes(self):
        store = populated_store()
        frozen = store.snapshot()
        root_before = bytes(frozen.root_hash)
        store.set("commitments/ch-0/3", b"overwritten")
        store.delete("commitments/ch-0/5")
        store.set("commitments/new", b"fresh")
        assert bytes(frozen.root_hash) == root_before
        assert frozen.get("commitments/ch-0/3") == b"value-3"
        assert frozen.contains("commitments/ch-0/5")
        assert not frozen.contains("commitments/new")

    def test_snapshot_is_frozen_under_sealing(self):
        store = populated_store()
        frozen = store.snapshot()
        nodes_before = frozen.node_count()
        for sequence in range(4):
            store.seal_seq("acks/ch-0", sequence)
        # Sealing replaced live nodes with stubs in the live store only.
        assert frozen.node_count() == nodes_before
        assert frozen.get_seq("acks/ch-0", 2) == b"ack-2"
        assert bytes(frozen.root_hash) == bytes(store.root_hash)  # root-neutral

    def test_snapshot_with_warm_hash_caches(self):
        # Forcing root_hash/proofs populates the cached node hashes;
        # snapshotting after that must not alias mutable cache state.
        from repro.trie.store import verify_path_membership

        store = populated_store()
        root_before = store.root_hash
        _ = store.prove("commitments/ch-0/1")
        frozen = store.snapshot()
        store.set("commitments/ch-0/1", b"mutated")
        assert frozen.get("commitments/ch-0/1") == b"value-1"
        assert bytes(frozen.root_hash) == bytes(root_before)
        frozen_proof = frozen.prove("commitments/ch-0/1")
        assert verify_path_membership(frozen.root_hash, "commitments/ch-0/1",
                                      b"value-1", frozen_proof)
        # The live store moved on to a different root and value.
        assert bytes(store.root_hash) != bytes(root_before)
        live_proof = store.prove("commitments/ch-0/1")
        assert verify_path_membership(store.root_hash, "commitments/ch-0/1",
                                      b"mutated", live_proof)


class TestStoreRoundTrip:
    def test_roundtrip_preserves_root_and_values(self):
        store = populated_store()
        restored = ProvableStore.from_bytes(store.to_bytes())
        assert bytes(restored.root_hash) == bytes(store.root_hash)
        for index in range(8):
            assert restored.get(f"commitments/ch-0/{index}") == f"value-{index}".encode()
        assert restored.get_seq("acks/ch-0", 3) == b"ack-3"

    def test_sealed_stubs_roundtrip(self):
        store = populated_store()
        for sequence in range(4):
            store.seal_seq("acks/ch-0", sequence)
        restored = load_store(dump_store(store))
        assert bytes(restored.root_hash) == bytes(store.root_hash)
        # The pruned history stays pruned: stubs dump as stubs.
        assert restored.node_count() == store.node_count()
        assert restored.to_bytes() == store.to_bytes()

    def test_equal_stores_dump_identically(self):
        a, b = populated_store(), populated_store()
        assert a.to_bytes() == b.to_bytes()

    def test_roundtripped_store_accepts_new_writes(self):
        from repro.trie.store import verify_path_membership

        restored = ProvableStore.from_bytes(populated_store().to_bytes())
        restored.set("commitments/after", b"post-load")
        assert restored.get("commitments/after") == b"post-load"
        proof = restored.prove("commitments/after")
        assert verify_path_membership(restored.root_hash, "commitments/after",
                                      b"post-load", proof)


class TestStoreDumpVectors:
    """Format pins, ``test_golden_vectors.py`` style: these bytes are
    what operators' cold-storage dumps contain — changing them is a
    tooling break, so change them consciously."""

    def build_trie(self):
        trie = SealableTrie()
        for index in range(6):
            key = hashlib.sha256(index.to_bytes(4, "big")).digest()
            trie.set(key, f"value-{index}".encode())
        return trie

    def test_empty_trie_vector(self):
        assert dump_trie(SealableTrie()).hex() == "ff"

    def test_single_leaf_vector(self):
        trie = SealableTrie()
        trie.set(b"\x12" * 32, b"v")
        assert hashlib.sha256(dump_trie(trie)).hexdigest() == (
            "412db66e3662ecdfad513ca67bf1366483d6bd2c6a22152aff4e23520dd7345b"
        )

    def test_six_entry_dump_digest(self):
        dump = dump_trie(self.build_trie())
        assert hashlib.sha256(dump).hexdigest() == (
            "ec720d832b1a057a11802d14f1cb611ed476b5d325c5c611488fc7d696ebaa4d"
        )
        assert bytes(load_trie(dump).root_hash) == bytes(self.build_trie().root_hash)

    def test_sealed_dump_digest(self):
        # Digest bumped with the sealed-stub format change: stubs now
        # carry a kind byte plus path/occupancy skeleton (re-pathable
        # sealing) instead of a bare subtree hash.
        trie = self.build_trie()
        trie.seal(hashlib.sha256((1).to_bytes(4, "big")).digest())
        dump = dump_trie(trie)
        assert hashlib.sha256(dump).hexdigest() == (
            "3664c4ce8e9cf1b82e8e6649b885ff19f1a8be7da2743651138cefadec48453a"
        )
        assert bytes(load_trie(dump).root_hash) == bytes(trie.root_hash)

    def test_store_path_vector(self):
        store = ProvableStore()
        store.set("commitments/ports/transfer/channels/channel-0/sequences/5",
                  b"\x01" * 32)
        assert hashlib.sha256(dump_store(store)).hexdigest() == (
            "39508fb456872c716f7cc7cb852721d0657c9e2c360644f2044ce5ac4e486896"
        )
