"""Unit tests for trie membership / non-membership proofs."""

import hashlib

import pytest

from repro.crypto.hashing import Hash
from repro.errors import SealedNodeError, TrieError
from repro.trie import (
    MembershipProof,
    NonMembershipProof,
    SealableTrie,
    verify_membership,
    verify_non_membership,
)


def key(i: int) -> bytes:
    return hashlib.sha256(f"key-{i}".encode()).digest()


@pytest.fixture
def populated():
    trie = SealableTrie()
    for i in range(64):
        trie.set(key(i), f"value-{i}".encode())
    return trie


class TestMembershipProofs:
    def test_valid_proof_verifies(self, populated):
        for i in (0, 7, 33, 63):
            proof = populated.prove(key(i))
            assert verify_membership(populated.root_hash, proof)

    def test_proof_binds_value(self, populated):
        proof = populated.prove(key(5))
        forged = MembershipProof(
            key=proof.key, value=b"forged", steps=proof.steps, leaf_path=proof.leaf_path,
        )
        assert not verify_membership(populated.root_hash, forged)

    def test_proof_binds_key(self, populated):
        proof = populated.prove(key(5))
        forged = MembershipProof(
            key=key(6), value=proof.value, steps=proof.steps, leaf_path=proof.leaf_path,
        )
        assert not verify_membership(populated.root_hash, forged)

    def test_proof_bound_to_root(self, populated):
        proof = populated.prove(key(5))
        other = SealableTrie()
        other.set(key(5), b"value-5")
        # Same key/value, different trie contents => different root.
        assert not verify_membership(other.root_hash, proof)

    def test_proof_fails_against_wrong_root(self, populated):
        proof = populated.prove(key(5))
        assert not verify_membership(Hash.of(b"random"), proof)

    def test_proof_after_update_is_stale(self, populated):
        proof = populated.prove(key(5))
        populated.set(key(99), b"new-entry")
        assert not verify_membership(populated.root_hash, proof)
        # But it still verifies against the historical root it was made for.

    def test_single_entry_trie(self):
        trie = SealableTrie()
        trie.set(key(1), b"only")
        proof = trie.prove(key(1))
        assert verify_membership(trie.root_hash, proof)
        assert proof.steps == ()

    def test_prove_missing_raises(self, populated):
        with pytest.raises(Exception):
            populated.prove(key(1000))

    def test_serialization_roundtrip(self, populated):
        proof = populated.prove(key(5))
        data = proof.to_bytes()
        restored = MembershipProof.from_bytes(data)
        assert restored == proof
        assert verify_membership(populated.root_hash, restored)

    def test_serialized_size_reasonable(self, populated):
        # A proof over 64 entries should be a handful of branch steps:
        # small enough to chunk into a few 1232-byte transactions (§V-A).
        proof = populated.prove(key(5))
        assert 100 < len(proof.to_bytes()) < 4096

    def test_corrupted_serialization_rejected(self, populated):
        data = bytearray(populated.prove(key(5)).to_bytes())
        data[len(data) // 2] ^= 0xFF
        try:
            restored = MembershipProof.from_bytes(bytes(data))
        except ValueError:
            return  # malformed wire data is an acceptable failure
        assert not verify_membership(populated.root_hash, restored)


class TestNonMembershipProofs:
    def test_absent_key_proof_verifies(self, populated):
        proof = populated.prove_absence(key(1000))
        assert verify_non_membership(populated.root_hash, proof)

    def test_empty_trie_absence(self):
        trie = SealableTrie()
        proof = trie.prove_absence(key(1))
        assert verify_non_membership(trie.root_hash, proof)

    def test_absence_proof_binds_key(self, populated):
        proof = populated.prove_absence(key(1000))
        forged = NonMembershipProof(key=key(5), steps=proof.steps, evidence=proof.evidence)
        assert not verify_non_membership(populated.root_hash, forged)

    def test_present_key_cannot_prove_absent(self, populated):
        with pytest.raises(TrieError):
            populated.prove_absence(key(5))

    def test_absence_proof_fails_on_wrong_root(self, populated):
        proof = populated.prove_absence(key(1000))
        assert not verify_non_membership(Hash.of(b"other"), proof)

    def test_many_absent_keys(self, populated):
        for i in range(500, 540):
            proof = populated.prove_absence(key(i))
            assert verify_non_membership(populated.root_hash, proof), i

    def test_serialization_roundtrip(self, populated):
        proof = populated.prove_absence(key(1000))
        restored = NonMembershipProof.from_bytes(proof.to_bytes())
        assert restored == proof
        assert verify_non_membership(populated.root_hash, restored)

    def test_divergent_leaf_evidence(self):
        # Two keys sharing a long prefix force a divergent-leaf terminal.
        trie = SealableTrie()
        trie.set(b"\x00" * 32, b"v")
        absent = b"\x00" * 31 + b"\x01"
        proof = trie.prove_absence(absent)
        assert verify_non_membership(trie.root_hash, proof)

    def test_empty_trie_proof_rejected_for_nonempty_root(self, populated):
        empty = SealableTrie()
        proof = empty.prove_absence(key(1))
        assert not verify_non_membership(populated.root_hash, proof)


class TestProofsAndSealing:
    def test_absence_beside_sealed_leaf_is_provable(self):
        """A sealed leaf stub keeps its path and value commitment, so a
        probe that diverges from it yields divergent-leaf evidence —
        absence stays provable after sealing."""
        trie = SealableTrie()
        trie.set(b"\x00" * 32, b"v")
        trie.set(b"\xff" * 32, b"w")
        trie.seal(b"\x00" * 32)
        proof = trie.prove_absence(b"\x00" * 31 + b"\x01")
        assert verify_non_membership(trie.root_hash, proof)

    def test_absence_of_sealed_key_itself_raises(self):
        """The sealed key is *present* (its commitment is retained); a
        non-membership claim for it must be refused, not proven."""
        trie = SealableTrie()
        trie.set(b"\x00" * 32, b"v")
        trie.set(b"\xff" * 32, b"w")
        trie.seal(b"\x00" * 32)
        with pytest.raises(SealedNodeError):
            trie.prove_absence(b"\x00" * 32)

    def test_old_proof_survives_sealing(self):
        """Sealing must not invalidate previously issued proofs — the
        commitment is unchanged (§III-A)."""
        trie = SealableTrie()
        for i in range(32):
            trie.set(key(i), b"v")
        proofs = [trie.prove(key(i)) for i in range(32)]
        root = trie.root_hash
        for i in range(16):
            trie.seal(key(i))
        assert trie.root_hash == root
        for proof in proofs:
            assert verify_membership(trie.root_hash, proof)


class TestProofMemoEviction:
    """Boundary behaviour of the proof memo's wholesale eviction.

    The memo clears itself when it reaches ``_PROOF_MEMO_MAX`` entries;
    proofs issued immediately before, at, and after that boundary must
    all stay correct, and the memo must also stay coherent across the
    incremental-rehash mutation path (which invalidates it wholesale).
    """

    def test_proofs_stay_correct_across_the_eviction_clear(self, populated, monkeypatch):
        import repro.trie.trie as trie_module

        monkeypatch.setattr(trie_module, "_PROOF_MEMO_MAX", 8)
        root = populated.root_hash
        # 20 distinct proofs cross the clear-at-8 boundary twice.
        proofs = [populated.prove(key(i)) for i in range(20)]
        assert len(populated._proof_memo) <= 8
        for i, proof in enumerate(proofs):
            assert proof.value == f"value-{i}".encode()
            assert verify_membership(root, proof)
        # Re-proving an evicted key regenerates an identical proof.
        assert populated.prove(key(0)).to_bytes() == proofs[0].to_bytes()

    def test_eviction_interleaves_membership_and_absence(self, populated, monkeypatch):
        import repro.trie.trie as trie_module

        monkeypatch.setattr(trie_module, "_PROOF_MEMO_MAX", 4)
        root = populated.root_hash
        for i in range(12):
            assert verify_membership(root, populated.prove(key(i)))
            assert verify_non_membership(root, populated.prove_absence(key(1000 + i)))
            assert len(populated._proof_memo) <= 4

    def test_memo_cleared_by_incremental_rehash(self, populated, monkeypatch):
        """A mutation rebuilds only the touched path (cached sibling
        hashes carry over), but the memo must still drop wholesale:
        every proof minted after the write has to bind the new root."""
        import repro.trie.trie as trie_module

        monkeypatch.setattr(trie_module, "_PROOF_MEMO_MAX", 4)
        old_root = populated.root_hash
        for i in range(6):  # warm (and overflow) the memo
            populated.prove(key(i))
        populated.set(key(1), b"updated")
        assert populated._proof_memo == {}
        new_root = populated.root_hash
        assert new_root != old_root
        for i in range(6):
            proof = populated.prove(key(i))
            expected = b"updated" if i == 1 else f"value-{i}".encode()
            assert proof.value == expected
            assert verify_membership(new_root, proof)
            assert not verify_membership(old_root, proof)
