"""Shared test helpers."""

from __future__ import annotations

from typing import Optional

from repro.crypto.hashing import Hash
from repro.ibc.client import LightClient


class StaticRootClient(LightClient):
    """A light client whose consensus states are injected directly.

    Unit tests for the IBC handlers use it to decouple protocol logic
    from header verification (the real clients are tested separately).
    """

    def __init__(self) -> None:
        super().__init__()
        self._states: dict[int, tuple[Hash, float]] = {}

    def set_state(self, height: int, root: Hash, timestamp: float = 0.0) -> None:
        self._states[height] = (root, timestamp)

    def latest_height(self) -> int:
        return max(self._states, default=0)

    def consensus_root(self, height: int) -> Optional[Hash]:
        entry = self._states.get(height)
        return entry[0] if entry else None

    def consensus_timestamp(self, height: int) -> Optional[float]:
        entry = self._states.get(height)
        return entry[1] if entry else None
