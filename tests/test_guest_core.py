"""Unit tests for guest blocks, epochs and the staking pool."""

from fractions import Fraction

import pytest

from repro.crypto.hashing import Hash
from repro.crypto.simsig import SimSigScheme
from repro.errors import GuestError, StakeError
from repro.guest.block import GuestBlock, GuestBlockHeader, sign_message
from repro.guest.config import GuestConfig
from repro.guest.epoch import Epoch
from repro.guest.staking import StakingPool


@pytest.fixture
def scheme():
    return SimSigScheme()


def keypair(scheme, i):
    return scheme.keypair_from_seed(bytes([i]) * 32)


def make_header(height=1, state_root=None, epoch=None, **overrides):
    epoch = epoch or Epoch(epoch_id=0, validators={}, quorum_stake=0)
    defaults = dict(
        height=height,
        prev_hash=Hash.zero(),
        timestamp=100.0,
        host_slot=250,
        state_root=state_root or Hash.of(b"root"),
        epoch_id=epoch.epoch_id,
        epoch_hash=epoch.canonical_hash(),
    )
    defaults.update(overrides)
    return GuestBlockHeader(**defaults)


class TestHeaders:
    def test_fingerprint_deterministic(self):
        assert make_header().fingerprint() == make_header().fingerprint()

    def test_fingerprint_binds_every_field(self):
        base = make_header()
        variants = [
            make_header(height=2),
            make_header(state_root=Hash.of(b"other")),
            make_header(timestamp=101.0),
            make_header(host_slot=251),
            make_header(prev_hash=Hash.of(b"parent")),
            make_header(packet_hashes=(Hash.of(b"p"),)),
            make_header(last_in_epoch=True),
            make_header(next_epoch_hash=Hash.of(b"next")),
        ]
        fingerprints = {v.fingerprint() for v in variants}
        assert base.fingerprint() not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_sign_message_embeds_height(self):
        header = make_header(height=7)
        message = header.sign_message()
        assert message == sign_message(7, header.fingerprint())
        assert int.from_bytes(message[10:18], "big") == 7

    def test_block_signature_collection(self, scheme):
        block = GuestBlock(header=make_header())
        kp = keypair(scheme, 1)
        block.add_signature(kp.public_key, kp.sign(block.header.sign_message()))
        assert kp.public_key in block.signer_set()
        with pytest.raises(GuestError):
            block.add_signature(kp.public_key, kp.sign(b"again"))


class TestEpoch:
    def make(self, scheme, stakes):
        validators = {keypair(scheme, i).public_key: s for i, s in enumerate(stakes, start=1)}
        total = sum(stakes)
        return Epoch(epoch_id=0, validators=validators, quorum_stake=total * 2 // 3 + 1)

    def test_quorum_by_stake_not_count(self, scheme):
        # One whale holds 70 %: alone it reaches quorum; the other four
        # together (30 %) never do.
        whale = keypair(scheme, 1).public_key
        minnows = [keypair(scheme, i).public_key for i in range(2, 6)]
        epoch = Epoch(
            epoch_id=0,
            validators={whale: 700, **{m: 75 for m in minnows}},
            quorum_stake=1000 * 2 // 3 + 1,
        )
        assert epoch.has_quorum({whale})
        assert not epoch.has_quorum(set(minnows))

    def test_non_validator_contributes_nothing(self, scheme):
        epoch = self.make(scheme, [100, 100, 100])
        stranger = keypair(scheme, 99).public_key
        assert epoch.signed_stake({stranger}) == 0

    def test_canonical_hash_order_independent(self, scheme):
        a = self.make(scheme, [100, 200, 300])
        b = Epoch(epoch_id=0, validators=dict(reversed(list(a.validators.items()))),
                  quorum_stake=a.quorum_stake)
        assert a.canonical_hash() == b.canonical_hash()

    def test_canonical_hash_binds_stakes(self, scheme):
        a = self.make(scheme, [100, 200, 300])
        changed = dict(a.validators)
        first = next(iter(changed))
        changed[first] += 1
        b = Epoch(epoch_id=0, validators=changed, quorum_stake=a.quorum_stake)
        assert a.canonical_hash() != b.canonical_hash()

    def test_invalid_quorum_rejected(self, scheme):
        kp = keypair(scheme, 1)
        with pytest.raises(GuestError):
            Epoch(epoch_id=0, validators={kp.public_key: 100}, quorum_stake=101)
        with pytest.raises(GuestError):
            Epoch(epoch_id=0, validators={kp.public_key: 0}, quorum_stake=1)


class TestStakingPool:
    @pytest.fixture
    def pool(self):
        return StakingPool(GuestConfig(min_stake_lamports=100, max_validators=3))

    def test_bond_and_select(self, pool, scheme):
        keys = [keypair(scheme, i).public_key for i in range(1, 6)]
        for i, key in enumerate(keys):
            pool.bond(key, 100 + i * 50)
        epoch = pool.select_epoch(epoch_id=1)
        # Top three by stake.
        assert len(epoch) == 3
        assert epoch.stake(keys[4]) == 300
        assert epoch.stake(keys[0]) == 0

    def test_below_minimum_excluded(self, pool, scheme):
        pool.bond(keypair(scheme, 1).public_key, 99)
        with pytest.raises(StakeError):
            pool.select_epoch(epoch_id=1)

    def test_unbonding_hold(self, pool, scheme):
        key = keypair(scheme, 1).public_key
        pool.bond(key, 500)
        release = pool.request_unbond(key, 200, now=0.0)
        assert release == GuestConfig().unbonding_seconds
        assert pool.withdraw(key, now=release - 1) == 0
        assert pool.withdraw(key, now=release) == 200
        assert pool.stake_of(key) == 300

    def test_cannot_unbond_more_than_bonded(self, pool, scheme):
        key = keypair(scheme, 1).public_key
        pool.bond(key, 100)
        with pytest.raises(StakeError):
            pool.request_unbond(key, 200, now=0.0)

    def test_slash_hits_unbonding_stake_too(self, pool, scheme):
        """§IV holds stake for a week after exit precisely so slashing
        still bites during the hold."""
        key = keypair(scheme, 1).public_key
        pool.bond(key, 1000)
        pool.request_unbond(key, 400, now=0.0)
        slashed = pool.slash(key, Fraction(1, 2))
        assert slashed == 500  # half of 600 bonded + half of 400 unbonding
        assert pool.stake_of(key) == 300
        assert pool.withdraw(key, now=1e9) == 200

    def test_slash_unknown_is_zero(self, pool, scheme):
        assert pool.slash(keypair(scheme, 9).public_key) == 0

    def test_remove_blocks_future_selection(self, pool, scheme):
        good, bad = keypair(scheme, 1).public_key, keypair(scheme, 2).public_key
        pool.bond(good, 500)
        pool.bond(bad, 900)
        pool.remove(bad)
        epoch = pool.select_epoch(epoch_id=1)
        assert not epoch.is_validator(bad)
        assert epoch.is_validator(good)

    def test_selection_deterministic_on_ties(self, pool, scheme):
        keys = sorted(
            (keypair(scheme, i).public_key for i in range(1, 6)), key=bytes,
        )
        for key in keys:
            pool.bond(key, 100)
        epoch = pool.select_epoch(epoch_id=1)
        assert set(epoch.validators) == set(keys[:3])


class TestReleaseAll:
    """§VI-A's self-destruction primitive at the pool level."""

    @pytest.fixture
    def pool(self):
        return StakingPool(GuestConfig(min_stake_lamports=100,
                                       unbonding_seconds=1_000.0))

    def test_bonded_stake_matures_immediately(self, pool, scheme):
        key = keypair(scheme, 1).public_key
        pool.bond(key, 700)
        released = pool.release_all(now=50.0)
        assert released == 700
        assert pool.stake_of(key) == 0
        assert pool.withdraw(key, now=50.0) == 700

    def test_unbonding_holds_cut_short(self, pool, scheme):
        key = keypair(scheme, 1).public_key
        pool.bond(key, 500)
        pool.request_unbond(key, 200, now=0.0)  # would release at 1000
        released = pool.release_all(now=10.0)
        assert released == 500  # 300 bonded + 200 still-held unbonding
        assert pool.withdraw(key, now=10.0) == 500

    def test_already_matured_not_double_counted(self, pool, scheme):
        key = keypair(scheme, 1).public_key
        pool.bond(key, 500)
        pool.request_unbond(key, 200, now=0.0)
        released = pool.release_all(now=2_000.0)  # the 200 matured already
        assert released == 300
        assert pool.withdraw(key, now=2_000.0) == 500

    def test_release_all_across_candidates(self, pool, scheme):
        keys = [keypair(scheme, i).public_key for i in range(1, 4)]
        for key in keys:
            pool.bond(key, 100)
        assert pool.release_all(now=0.0) == 300
        for key in keys:
            assert pool.withdrawable(key, now=0.0) == 100


class TestSlashFractions:
    def test_full_slash(self, scheme):
        pool = StakingPool(GuestConfig(min_stake_lamports=1))
        key = keypair(scheme, 1).public_key
        pool.bond(key, 999)
        assert pool.slash(key, Fraction(1, 1)) == 999
        assert pool.stake_of(key) == 0

    def test_small_fraction_rounds_down(self, scheme):
        pool = StakingPool(GuestConfig(min_stake_lamports=1))
        key = keypair(scheme, 1).public_key
        pool.bond(key, 10)
        assert pool.slash(key, Fraction(1, 3)) == 3
        assert pool.stake_of(key) == 7

    def test_slashed_total_accumulates(self, scheme):
        pool = StakingPool(GuestConfig(min_stake_lamports=1))
        a, b = keypair(scheme, 1).public_key, keypair(scheme, 2).public_key
        pool.bond(a, 100)
        pool.bond(b, 200)
        pool.slash(a)
        pool.slash(b)
        assert pool.slashed_total == 150  # default half each
