"""Chaos run: a randomized packet storm with global invariant checks.

Fires randomized ICS-20 traffic in both directions (overlapping, with
random amounts and random fee policies) and then audits the system-wide
invariants the paper's safety argument implies:

* token conservation: escrowed == circulating vouchers, per denom;
* exactly-once delivery: receipts/acks counted once per sequence;
* bounded guest state: commitments cleared on ack, receipts sealed;
* the guest chain remains live and finalising throughout.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.ibc import commitment as paths
from repro.validators.profiles import simple_profiles


@pytest.fixture(scope="module")
def stormed():
    dep = Deployment(DeploymentConfig(
        seed=99,
        guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
        profiles=simple_profiles(5),
    ))
    guest_chan, cp_chan = dep.establish_link()
    rng = dep.sim.rng.fork("chaos")

    dep.contract.bank.mint("g-user", "GUEST", 1_000_000)
    dep.counterparty.bank.mint("c-user", "PICA", 1_000_000)

    guest_sent_total = {"value": 0, "count": 0}
    cp_sent_total = {"value": 0, "count": 0}

    def guest_send():
        amount = rng.randint(1, 500)
        payload = dep.contract.transfer.make_payload(
            guest_chan, "GUEST", amount, "g-user", "c-recv",
        )
        if rng.bernoulli(0.3):
            dep.user_api.send_packet_via_bundle(
                "transfer", str(guest_chan), payload, tip_lamports=15_090_000,
            )
        else:
            dep.user_api.send_packet("transfer", str(guest_chan), payload)
        guest_sent_total["value"] += amount
        guest_sent_total["count"] += 1

    def cp_send():
        amount = rng.randint(1, 500)

        def inner():
            payload = dep.counterparty.transfer.make_payload(
                cp_chan, "PICA", amount, "c-user", "g-recv",
            )
            dep.counterparty.ibc.send_packet(
                dep.counterparty.transfer_port, cp_chan, payload, 0.0,
            )
        dep.counterparty.submit(inner)
        cp_sent_total["value"] += amount
        cp_sent_total["count"] += 1

    # 12 sends each way at randomized times over ~20 minutes.
    for _ in range(12):
        dep.sim.schedule(rng.uniform(1.0, 1_200.0), guest_send)
        dep.sim.schedule(rng.uniform(1.0, 1_200.0), cp_send)
    dep.run_for(2_400.0)  # storm + drain

    return dep, guest_chan, cp_chan, guest_sent_total, cp_sent_total


class TestChaosInvariants:
    def test_all_packets_delivered_and_acked(self, stormed):
        dep, guest_chan, cp_chan, guest_sent, cp_sent = stormed
        assert dep.contract.ibc.counters.packets_sent == guest_sent["count"]
        assert dep.counterparty.ibc.counters.packets_received == guest_sent["count"]
        assert dep.contract.ibc.counters.packets_acknowledged == guest_sent["count"]
        assert dep.contract.ibc.counters.packets_received == cp_sent["count"]
        assert dep.counterparty.ibc.counters.packets_acknowledged == cp_sent["count"]

    def test_token_conservation_guest_denom(self, stormed):
        dep, guest_chan, cp_chan, guest_sent, _ = stormed
        escrow = dep.contract.transfer.escrow_address(guest_chan)
        voucher = dep.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
        escrowed = dep.contract.bank.balance(escrow, "GUEST")
        circulating = dep.counterparty.bank.total_supply(voucher)
        assert escrowed == circulating == guest_sent["value"]
        # Nothing minted from thin air on the guest either.
        assert (dep.contract.bank.balance("g-user", "GUEST") + escrowed
                == 1_000_000)

    def test_token_conservation_cp_denom(self, stormed):
        dep, guest_chan, cp_chan, _, cp_sent = stormed
        escrow = dep.counterparty.transfer.escrow_address(cp_chan)
        voucher = dep.contract.transfer.voucher_denom(guest_chan, "PICA")
        escrowed = dep.counterparty.bank.balance(escrow, "PICA")
        circulating = dep.contract.bank.total_supply(voucher)
        assert escrowed == circulating == cp_sent["value"]

    def test_guest_commitments_cleared(self, stormed):
        """Acked commitments are deleted: sender-side state is bounded."""
        dep, guest_chan, _, guest_sent, _ = stormed
        prefix = paths.commitment_prefix("transfer", guest_chan)
        for sequence in range(guest_sent["count"]):
            assert not dep.contract.ibc.store.contains_seq(prefix, sequence)

    def test_guest_receipts_sealed_behind_watermark(self, stormed):
        dep, guest_chan, _, _, cp_sent = stormed
        from repro.errors import SealedNodeError
        prefix = paths.receipt_prefix("transfer", guest_chan)
        sealed = 0
        for sequence in range(cp_sent["count"]):
            try:
                dep.contract.ibc.store.get_seq(prefix, sequence)
            except SealedNodeError:
                sealed += 1
        # The lagged rule keeps at most the last two unsealed.
        assert sealed >= cp_sent["count"] - 2

    def test_chain_remained_live(self, stormed):
        dep, *_ = stormed
        blocks = dep.contract.blocks
        assert len(blocks) > 5
        assert all(b.finalised for b in blocks[:-1])

    def test_guest_state_stays_small(self, stormed):
        dep, *_ = stormed
        # After the storm drains, live provable state is a tiny fraction
        # of the 10 MiB account (§V-D's long-term sufficiency claim).
        assert dep.contract.state_usage_bytes() < 64 * 1024
