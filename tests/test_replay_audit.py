"""The replay-divergence audit: restore + replay must be bit-identical.

This is the acceptance test for the whole checkpoint subsystem: a live
batched workload runs thousands of events, a snapshot is taken
mid-flight (round-tripped through the binary container), and the
restored world replays more than ten thousand events to the same finish
line as the original — store roots, event counters, trace histograms,
span streams and workload latencies must all come out identical, across
multiple seeds.
"""

import pytest

from repro.checkpoint.audit import ReplayAuditConfig, run_replay_audit


class TestReplayAudit:
    @pytest.mark.parametrize("seed", [401, 402, 403])
    def test_replay_is_bit_identical(self, seed):
        record = run_replay_audit(ReplayAuditConfig(seed=seed))
        assert record["divergences"] == []
        assert record["match"] is True
        # The audit must actually exercise scale: a trivial replay
        # proves nothing about in-flight continuations.
        assert record["events_replayed"] >= 10_000
        assert record["snapshot_events"] >= 4_000

    def test_snapshot_point_past_the_workload_fails_loudly(self):
        from repro.checkpoint import CheckpointError

        tiny = ReplayAuditConfig(seed=401, offered_pps=1.0, duration=5.0,
                                 drain_seconds=60.0,
                                 snapshot_after_events=10_000_000)
        with pytest.raises(CheckpointError, match="drained"):
            run_replay_audit(tiny)
