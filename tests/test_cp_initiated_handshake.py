"""The counterparty-initiated connection handshake.

A connection can be opened from either end; this exercises the paths the
guest-initiated flow never touches: the Guest Contract's CONN_OPEN_TRY
and CONN_OPEN_CONFIRM handlers (proof-checked against the chunked light
client), and the counterparty's ACK.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.ibc.connection import ConnectionState
from repro.ibc.identifiers import PortId
from repro.validators.profiles import simple_profiles


@pytest.fixture(scope="module")
def cp_initiated():
    dep = Deployment(DeploymentConfig(
        seed=111,
        guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
    ))
    outcome = {}
    dep.relayer.open_connection_from_counterparty(
        dep.contract.counterparty_client_id,
        lambda g, c: outcome.update(guest=g, cp=c),
    )
    deadline = dep.sim.now + 3_600.0
    while "cp" not in outcome and dep.sim.now < deadline:
        dep.sim.step()
    assert "cp" in outcome, "counterparty-initiated handshake stalled"
    return dep, outcome["guest"], outcome["cp"]


class TestCounterpartyInitiatedConnection:
    def test_both_ends_open(self, cp_initiated):
        dep, guest_conn, cp_conn = cp_initiated
        assert dep.contract.ibc.connection(guest_conn).state == ConnectionState.OPEN
        assert dep.counterparty.ibc.connection(cp_conn).state == ConnectionState.OPEN

    def test_ends_reference_each_other(self, cp_initiated):
        dep, guest_conn, cp_conn = cp_initiated
        guest_end = dep.contract.ibc.connection(guest_conn)
        cp_end = dep.counterparty.ibc.connection(cp_conn)
        assert guest_end.counterparty_connection_id == cp_conn
        assert cp_end.counterparty_connection_id == guest_conn

    def test_channel_and_transfer_work_over_it(self, cp_initiated):
        dep, guest_conn, cp_conn = cp_initiated
        opened = {}
        dep.relayer.open_channel(
            PortId("transfer"), PortId("transfer"),
            lambda g, c: opened.update(guest=g, cp=c),
        )
        deadline = dep.sim.now + 3_600.0
        while "cp" not in opened and dep.sim.now < deadline:
            dep.sim.step()
        assert "cp" in opened

        dep.contract.bank.mint("alice", "GUEST", 50)
        payload = dep.contract.transfer.make_payload(
            opened["guest"], "GUEST", 30, "alice", "bob",
        )
        dep.user_api.send_packet("transfer", str(opened["guest"]), payload)
        dep.run_for(240.0)
        voucher = dep.counterparty.transfer.voucher_denom(opened["cp"], "GUEST")
        assert dep.counterparty.bank.balance("bob", voucher) == 30
