"""Full-stack cross-guest routing: sibling links, 2-hop routes, acks.

These run the real event-loop deployment — host chain, validator
cohorts, crankers, the classic guest↔counterparty relayers AND the
host-verified SiblingRelayer — not the protocol-level harness.
"""

import pytest

from repro.fabric import TopologyConfig, build_fabric
from repro.ibc.identifiers import ChannelId


@pytest.fixture(scope="module")
def line():
    """cp-a — g0 — g1 — cp-b, all links established, route resolved."""
    dep = build_fabric(TopologyConfig.chain_of(
        ("cp-a", "g0", "g1", "cp-b"), seed=13))
    dep.counterparties["cp-a"].bank.mint("alice", "uatom", 1_000_000)
    return dep


class TestLinkEstablishment:
    def test_every_link_has_channels_on_both_ends(self, line):
        for link in line.links:
            assert set(link.channels) == link.spec.ends

    def test_sibling_link_used_for_guest_guest(self, line):
        kinds = {link.spec.ends: link.kind for link in line.links}
        assert kinds[frozenset(("g0", "g1"))] == "guest-guest"
        assert kinds[frozenset(("cp-a", "g0"))] == "guest-cp"

    def test_route_table_resolved(self, line):
        hops = line.routes.route("path")
        assert [h.chain for h in hops] == ["cp-a", "g0", "g1"]
        assert line.routes.hop_count("path") == 3

    def test_sibling_clients_registered_both_ways(self, line):
        g0 = line.guests["g0"].contract
        g1 = line.guests["g1"].contract
        assert len(g0.sibling_clients) == 1
        assert len(g1.sibling_clients) == 1
        client = next(iter(g0.sibling_clients.values()))
        assert client.latest_height() > 0  # adopted during the handshake


class TestRoutedTransfer:
    def test_two_hop_route_end_to_end(self, line):
        checker = line.conservation_checker()
        cp_b = line.counterparties["cp-b"]
        line.send_along("path", "alice", "bob", "uatom", 777)
        deadline = line.sim.now + 900.0
        while line.sim.now < deadline:
            line.run_for(30.0)
            if any(addr == "bob"
                   for (addr, _) in cp_b.bank.balances()):
                break
        line.run_for(120.0)  # let trailing acks seal
        bob = {denom: amount
               for (addr, denom), amount in cp_b.bank.balances().items()
               if addr == "bob"}
        assert sum(bob.values()) == 777
        # Three hops away from origin: triple-prefixed voucher denom.
        (denom,) = bob
        assert denom.count("/") == 6
        assert denom.endswith("/uatom")
        assert checker.check().ok, checker.check().failures

    def test_hop_scoped_acks_settled_every_hop(self, line):
        g0 = line.guests["g0"].contract
        g1 = line.guests["g1"].contract
        assert g0.forward.forwards_started >= 1
        assert g0.forward.forwards_started == g0.forward.forwards_settled
        assert g1.forward.forwards_started == g1.forward.forwards_settled
        assert g0.forward.unwinds == 0
        assert g1.forward.unwinds == 0
        # No unwind records left in flight on either middleware.
        assert not g0.forward._forwards
        assert not g1.forward._forwards


class TestSiblingTransfer:
    def test_guest_to_guest_direct_transfer(self, line):
        """One hop over the sibling link, no forwarding involved:
        g0 mints a native guest asset and sends it to a g1 user."""
        g0 = line.guests["g0"].contract
        g1 = line.guests["g1"].contract
        sibling = line.link_between("g0", "g1")
        chan_g0 = ChannelId(sibling.channels["g0"])
        chan_g1 = sibling.channels["g1"]

        g0.bank.mint(str(line.user["g0"]), "ug0coin", 5_000)
        checker = line.conservation_checker()
        payload = g0.transfer.make_payload(
            chan_g0, "ug0coin", 1_234,
            sender=str(line.user["g0"]), receiver="carol")
        line.user_api["g0"].send_packet("transfer", str(chan_g0),
                                        payload, 0.0)
        voucher = f"transfer/{chan_g1}/ug0coin"
        deadline = line.sim.now + 600.0
        while (g1.bank.balance("carol", voucher) == 0
               and line.sim.now < deadline):
            line.run_for(30.0)
        assert g1.bank.balance("carol", voucher) == 1_234
        assert g0.bank.balance(
            g0.transfer.escrow_address(chan_g0), "ug0coin") == 1_234
        line.run_for(60.0)
        assert checker.check().ok

    def test_sibling_relayer_metrics_counted_work(self, line):
        sibling = line.link_between("g0", "g1")
        metrics = sibling.relayer.metrics
        assert metrics.packets_delivered >= 1
        assert metrics.acks_returned >= 1
