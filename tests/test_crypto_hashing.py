"""Unit tests for repro.crypto.hashing."""

import hashlib

import pytest

from repro.crypto.hashing import Hash, hash_bytes, hash_concat, merkle_root


class TestHash:
    def test_of_matches_sha256(self):
        assert Hash.of(b"hello").value == hashlib.sha256(b"hello").digest()

    def test_zero_is_32_zero_bytes(self):
        assert Hash.zero().value == bytes(32)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Hash(b"short")

    def test_rejects_non_bytes(self):
        with pytest.raises(ValueError):
            Hash("0" * 64)  # type: ignore[arg-type]

    def test_equality_and_hashability(self):
        a = Hash.of(b"x")
        b = Hash.of(b"x")
        assert a == b
        assert len({a, b}) == 1

    def test_bytes_roundtrip(self):
        h = Hash.of(b"data")
        assert Hash(bytes(h)) == h

    def test_hex_and_short(self):
        h = Hash.of(b"data")
        assert h.hex() == h.value.hex()
        assert h.hex().startswith(h.short())


class TestHashConcat:
    def test_deterministic(self):
        assert hash_concat(b"a", b"b") == hash_concat(b"a", b"b")

    def test_split_resistant(self):
        # Length prefixes must make different splits hash differently.
        assert hash_concat(b"ab", b"c") != hash_concat(b"a", b"bc")

    def test_accepts_hash_parts(self):
        h = hash_bytes(b"inner")
        assert hash_concat(h, b"x") == hash_concat(bytes(h), b"x")

    def test_order_matters(self):
        assert hash_concat(b"a", b"b") != hash_concat(b"b", b"a")


class TestMerkleRoot:
    def test_empty_is_zero(self):
        assert merkle_root([]) == Hash.zero()

    def test_single_leaf_not_raw_hash(self):
        # Domain separation: leaf hashing differs from plain sha256.
        root = merkle_root([b"leaf"])
        assert root.value != hashlib.sha256(b"leaf").digest()

    def test_order_sensitivity(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"b", b"a"])

    def test_odd_leaf_count(self):
        # Three leaves must produce a root distinct from two or four.
        r3 = merkle_root([b"a", b"b", b"c"])
        r2 = merkle_root([b"a", b"b"])
        assert r3 != r2

    def test_deterministic(self):
        leaves = [bytes([i]) * 4 for i in range(7)]
        assert merkle_root(leaves) == merkle_root(leaves)
