"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulation, lognormal_from_quantiles
from repro.sim.rng import Rng


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulation(seed=1)
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulation(seed=1)
        fired = []
        for label in "abcde":
            sim.schedule(1.0, fired.append, label)
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulation(seed=1)
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]

    def test_negative_delay_rejected(self):
        sim = Simulation(seed=1)
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulation(seed=1)
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancel(self):
        sim = Simulation(seed=1)
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_events_can_schedule_events(self):
        sim = Simulation(seed=1)
        fired = []

        def first():
            fired.append(sim.now)
            sim.schedule(1.0, second)

        def second():
            fired.append(sim.now)

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [1.0, 2.0]

    def test_run_until_stops_at_boundary(self):
        sim = Simulation(seed=1)
        fired = []
        sim.schedule(1.0, fired.append, "in")
        sim.schedule(5.0, fired.append, "out")
        sim.run_until(2.0)
        assert fired == ["in"]
        assert sim.now == 2.0
        assert sim.pending_events() == 1

    def test_run_until_cannot_rewind(self):
        sim = Simulation(seed=1)
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_runaway_guard(self):
        sim = Simulation(seed=1)

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_run_draining_in_exactly_max_events_is_not_a_runaway(self):
        """Regression: ``run(max_events=N)`` used to raise even when the
        N-th step emptied the queue — the guard fired before checking
        whether anything was actually left."""
        sim = Simulation(seed=1)
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=5)
        assert fired == [0, 1, 2, 3, 4]
        assert sim.pending_events() == 0

    def test_run_raises_when_events_remain_past_the_budget(self):
        sim = Simulation(seed=1)
        for i in range(6):
            sim.schedule(float(i + 1), lambda: None)
        with pytest.raises(SimulationError):
            sim.run(max_events=5)

    def test_run_budget_boundary_ignores_cancelled_leftovers(self):
        """Tombstones left in the queue after the last step must not
        trip the runaway guard — only live events count."""
        sim = Simulation(seed=1)
        fired = []
        sim.schedule(1.0, fired.append, "a")
        doomed = sim.schedule(2.0, fired.append, "b")
        doomed.cancel()
        sim.run(max_events=1)
        assert fired == ["a"]
        assert sim.pending_events() == 0


class TestCancellationEdgeCases:
    def test_cancel_head_of_queue_event(self):
        """Cancelling the event at the head of the heap must not stall
        the loop or fire the cancelled callback."""
        sim = Simulation(seed=1)
        fired = []
        head = sim.schedule(1.0, fired.append, "head")
        sim.schedule(2.0, fired.append, "tail")
        head.cancel()
        assert sim.step() is True      # skips the cancelled head, runs tail
        assert fired == ["tail"]
        assert sim.now == 2.0

    def test_cancel_head_then_run_until(self):
        sim = Simulation(seed=1)
        fired = []
        head = sim.schedule(1.0, fired.append, "head")
        sim.schedule(3.0, fired.append, "tail")
        head.cancel()
        sim.run_until(3.0)
        assert fired == ["tail"]
        assert sim.now == 3.0

    def test_run_until_exactly_at_event_time_is_inclusive(self):
        sim = Simulation(seed=1)
        fired = []
        sim.schedule(5.0, fired.append, "boundary")
        sim.run_until(5.0)
        assert fired == ["boundary"]
        assert sim.now == 5.0
        assert sim.pending_events() == 0

    def test_run_until_boundary_fires_all_equal_time_events(self):
        sim = Simulation(seed=1)
        fired = []
        for label in "abc":
            sim.schedule(5.0, fired.append, label)
        sim.run_until(5.0)
        assert fired == ["a", "b", "c"]

    def test_pending_events_after_mass_cancellation(self):
        sim = Simulation(seed=1)
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        assert sim.pending_events() == 100
        for handle in handles:
            handle.cancel()
        assert sim.pending_events() == 0
        # The heap still holds the tombstones; draining must be a no-op.
        assert sim.step() is False
        assert sim.now == 0.0

    def test_cancel_event_scheduled_for_now(self):
        sim = Simulation(seed=1)
        fired = []
        handle = sim.schedule(0.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert sim.pending_events() == 0


class TestCompaction:
    def test_mass_cancellation_compacts_the_heap(self):
        """Once tombstones outnumber live entries (and clear the floor)
        the heap is rebuilt with only live events."""
        sim = Simulation(seed=1)
        keep = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        doomed = [sim.schedule(float(i + 100), lambda: None)
                  for i in range(200)]
        for handle in doomed:
            handle.cancel()
        assert sim.pending_events() == 10
        # Rebuilds fired along the way: the resident heap holds the 10
        # live events plus at most a sub-floor remainder of tombstones,
        # never the 200 cancellations.
        assert len(sim._queue) == 10 + sim._cancelled
        assert sim._cancelled < sim._COMPACT_MIN_TOMBSTONES
        del keep

    def test_below_threshold_keeps_tombstones_resident(self):
        sim = Simulation(seed=1)
        for i in range(200):
            sim.schedule(float(i + 1), lambda: None)
        doomed = [sim.schedule(float(i + 500), lambda: None)
                  for i in range(40)]
        for handle in doomed:
            handle.cancel()
        # 40 tombstones: under the 64 floor, no rebuild yet.
        assert sim.pending_events() == 200
        assert len(sim._queue) == 240

    def test_compacted_schedule_still_fires_in_order(self):
        sim = Simulation(seed=1)
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        doomed = [sim.schedule(float(i + 50), lambda: None)
                  for i in range(150)]
        for handle in doomed:
            handle.cancel()
        sim.schedule(0.5, fired.append, "early")
        sim.run()
        assert fired == ["early", 0, 1, 2, 3, 4]

    def test_cancel_is_idempotent_for_accounting(self):
        sim = Simulation(seed=1)
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        handle.cancel()
        assert sim.pending_events() == 1
        sim.run()
        assert sim.pending_events() == 0

    def test_dispatched_events_counts_only_fired_callbacks(self):
        sim = Simulation(seed=1)
        for i in range(6):
            sim.schedule(float(i + 1), lambda: None)
        victim = sim.schedule(0.5, lambda: None)
        victim.cancel()
        assert sim.dispatched_events() == 0
        sim.run()
        assert sim.dispatched_events() == 6
        assert sim.pending_events() == 0

    def test_dispatch_of_tombstone_repairs_the_count(self):
        # A cancelled head entry popped during dispatch must decrement
        # the tombstone count so pending_events stays exact.
        sim = Simulation(seed=1)
        head = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        head.cancel()
        assert sim._cancelled == 1
        sim.step()
        assert sim._cancelled == 0
        assert sim.pending_events() == 0


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a, b = Rng(42), Rng(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_forked_streams_independent(self):
        root = Rng(42)
        a = root.fork("actor-a")
        before = [a.random() for _ in range(5)]
        # Recreate with an extra fork in between: actor-a's stream is its
        # own, but fork order matters on the root — so fork labels exist
        # to document intent, and identical fork sequences reproduce.
        root2 = Rng(42)
        a2 = root2.fork("actor-a")
        assert [a2.random() for _ in range(5)] == before


class TestDistributions:
    def test_lognormal_quantile_fit(self):
        mu, sigma = lognormal_from_quantiles(median=3.2, q3=5.2)
        rng = Rng(7)
        samples = sorted(rng.lognormal(mu, sigma) for _ in range(20_000))
        med = samples[len(samples) // 2]
        q3 = samples[int(len(samples) * 0.75)]
        assert med == pytest.approx(3.2, rel=0.05)
        assert q3 == pytest.approx(5.2, rel=0.05)

    def test_lognormal_fit_validates_input(self):
        with pytest.raises(ValueError):
            lognormal_from_quantiles(median=5.0, q3=4.0)
        with pytest.raises(ValueError):
            lognormal_from_quantiles(median=0.0, q3=1.0)

    def test_poisson_mean(self):
        rng = Rng(7)
        samples = [rng.poisson(4.0) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(4.0, rel=0.05)

    def test_poisson_zero_mean(self):
        rng = Rng(7)
        assert rng.poisson(0.0) == 0

    def test_poisson_large_mean_uses_normal_approx(self):
        rng = Rng(7)
        samples = [rng.poisson(1_000.0) for _ in range(200)]
        assert sum(samples) / len(samples) == pytest.approx(1_000.0, rel=0.05)

    def test_bernoulli_probability(self):
        rng = Rng(7)
        hits = sum(rng.bernoulli(0.25) for _ in range(20_000))
        assert hits / 20_000 == pytest.approx(0.25, abs=0.02)
