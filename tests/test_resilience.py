"""Units for the recovery primitives behind docs/CHAOS.md.

`RetryPolicy` and `CircuitBreaker` are the two deterministic building
blocks every hardened path (relayer bundles, fisherman evidence, LC
update pump) leans on; these tests pin their contracts down in
isolation so the chaos-storm tests can blame the integration, not the
primitives.
"""

from repro.observability import NULL_TRACER
from repro.relayer.resilience import CircuitBreaker, RetryPolicy
from repro.sim.rng import Rng


class FakeSim:
    """Just enough of the kernel for time-based primitives."""

    def __init__(self):
        self.now = 0.0
        self.trace = NULL_TRACER


class TestRetryPolicy:
    def test_allows_is_bounded(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(0)
        assert policy.allows(2)
        assert not policy.allows(3)
        assert not policy.allows(10)

    def test_delay_is_exponential_then_capped(self):
        policy = RetryPolicy(base_seconds=2.0, cap_seconds=30.0, jitter=0.0)
        rng = Rng(1)
        assert policy.delay(1, rng) == 2.0
        assert policy.delay(2, rng) == 4.0
        assert policy.delay(3, rng) == 8.0
        assert policy.delay(10, rng) == 30.0  # capped

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_seconds=4.0, cap_seconds=100.0, jitter=0.25)
        rng = Rng(7)
        for attempt in (1, 2, 3):
            raw = 4.0 * (2.0 ** (attempt - 1))
            for _ in range(50):
                delay = policy.delay(attempt, rng)
                assert raw * 0.75 <= delay <= raw * 1.25

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(jitter=0.5)
        first = [policy.delay(n, Rng(99)) for n in range(1, 6)]
        second = [policy.delay(n, Rng(99)) for n in range(1, 6)]
        assert first == second


class TestCircuitBreaker:
    def make(self, **kwargs):
        sim = FakeSim()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("reset_seconds", 5.0)
        kwargs.setdefault("reset_cap_seconds", 60.0)
        return sim, CircuitBreaker(sim, **kwargs)

    def test_trips_after_consecutive_failures(self):
        sim, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opened_count == 1

    def test_success_resets_the_failure_streak(self):
        sim, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_single_probe_per_interval_then_close(self):
        sim, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after() == 5.0
        sim.now = 4.9
        assert not breaker.allow()
        sim.now = 5.0
        assert breaker.allow()            # the probe
        assert breaker.state == "half-open"
        assert breaker.allow()            # half-open keeps admitting the prober
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.retry_after() == 0.0

    def test_failed_probe_doubles_the_interval(self):
        sim, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()      # open, retry at t=5
        sim.now = 5.0
        assert breaker.allow()
        breaker.record_failure()          # failed probe: reopen, interval 10
        assert breaker.state == "open"
        assert breaker.retry_after() == 10.0
        sim.now = 15.0
        assert breaker.allow()
        breaker.record_failure()          # interval 20
        assert breaker.retry_after() == 20.0

    def test_interval_is_capped(self):
        sim, breaker = self.make(reset_seconds=5.0, reset_cap_seconds=12.0)
        for _ in range(3):
            breaker.record_failure()
        for _ in range(5):                # repeated failed probes
            sim.now += breaker.retry_after()
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.retry_after() <= 12.0

    def test_success_resets_the_interval_too(self):
        sim, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        sim.now = 5.0
        assert breaker.allow()
        breaker.record_failure()          # interval now 10
        sim.now = 20.0
        assert breaker.allow()
        breaker.record_success()          # closed; interval back to 5
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after() == 5.0
