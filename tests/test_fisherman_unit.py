"""Unit tests for the Fisherman's decision logic and report bookkeeping."""

import pytest

from repro import Deployment, DeploymentConfig
from repro.fisherman.evidence import GOSSIP_TOPIC, BlockClaim, ByzantineValidator
from repro.guest.block import sign_message
from repro.guest.config import GuestConfig
from repro.validators.profiles import simple_profiles


@pytest.fixture
def dep():
    config = DeploymentConfig(
        seed=201,
        guest=GuestConfig(delta_seconds=60.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
        with_fisherman=True,
    )
    deployment = Deployment(config)
    deployment.run_for(20.0)
    return deployment


class TestOffenceClassification:
    def claim(self, dep, keypair, height, fingerprint):
        return BlockClaim(
            validator=keypair.public_key, height=height, fingerprint=fingerprint,
            signature=keypair.sign(sign_message(height, fingerprint)),
        )

    def test_conflicting_block_is_offence(self, dep):
        validator = dep.validators[0].keypair
        claim = self.claim(dep, validator, 0, b"\x99" * 32)
        assert dep.fisherman._is_offence(claim)

    def test_above_head_is_offence(self, dep):
        validator = dep.validators[0].keypair
        claim = self.claim(dep, validator, 500, b"\x01" * 32)
        assert dep.fisherman._is_offence(claim)

    def test_honest_claim_is_not(self, dep):
        validator = dep.validators[0].keypair
        genuine = dep.contract.blocks[0].header.fingerprint()
        claim = self.claim(dep, validator, 0, genuine)
        assert not dep.fisherman._is_offence(claim)

    def test_same_claim_prosecuted_once(self, dep):
        offender = dep.validators[1].keypair
        claim = self.claim(dep, offender, 0, b"\x42" * 32)
        dep.gossip.publish(GOSSIP_TOPIC, claim)
        dep.gossip.publish(GOSSIP_TOPIC, claim)  # duplicate gossip
        dep.run_for(60.0)
        assert len(dep.fisherman.reports) == 1
        assert dep.fisherman.reports[0].accepted

    def test_unstaked_gossiper_ignored(self, dep):
        nobody = dep.scheme.keypair_from_seed(bytes([13]) * 32)
        claim = self.claim(dep, nobody, 3, b"\x42" * 32)
        dep.gossip.publish(GOSSIP_TOPIC, claim)
        dep.run_for(60.0)
        assert not dep.fisherman.reports  # nothing to slash, no report


class TestByzantineActor:
    def test_equivocate_publishes_conflicting_claim(self, dep):
        byz = ByzantineValidator(dep.sim, dep.gossip, dep.validators[2].keypair)
        claim = byz.equivocate(height=0)
        assert claim.fingerprint != dep.contract.blocks[0].header.fingerprint()
        assert byz.claims_made == [claim]
        # The claim's signature genuinely verifies (a real equivocation,
        # not garbage the contract would reject on signature grounds).
        assert dep.scheme.verify(
            claim.validator, claim.message(), claim.signature,
        )

    def test_hooked_byzantine_forges_above_head(self, dep):
        byz = ByzantineValidator(dep.sim, dep.gossip,
                                 dep.validators[2].keypair, forge_above_head=True)
        dep.host.subscribe("NewBlock", byz.on_new_block)
        dep.run_for(120.0)  # Δ block triggers the hook
        assert byz.claims_made
        assert all(c.height > dep.contract.head.height - 3 for c in byz.claims_made)

    def test_full_pipeline_slashes_and_ejects(self, dep):
        offender = dep.validators[2]
        stake_before = dep.contract.staking.stake_of(offender.keypair.public_key)
        byz = ByzantineValidator(dep.sim, dep.gossip, offender.keypair)
        byz.equivocate(height=0)
        dep.run_for(60.0)
        assert dep.contract.staking.stake_of(offender.keypair.public_key) == 0
        assert dep.contract.staking.slashed_total == stake_before // 2
        # Ejected: the next epoch selection excludes the offender.
        epoch = dep.contract.staking.select_epoch(epoch_id=99)
        assert not epoch.is_validator(offender.keypair.public_key)
