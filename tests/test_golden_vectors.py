"""Golden vectors: the commitment scheme, pinned.

Every hash here anchors the wire/commitment format: light clients on
*other* chains must recompute these exact values, so any change to the
trie's node hashing, the packet commitment, the epoch hash or the block
fingerprint is a consensus break.  If one of these tests fails, you have
changed the protocol — bump it consciously, never casually.
"""

import hashlib

from repro.accountability import AccountabilityProof, Finalisation, build_proof
from repro.crypto.hashing import Hash, hash_concat, merkle_root
from repro.crypto.simsig import SimSigScheme
from repro.guest.block import GuestBlockHeader, sign_message
from repro.guest.epoch import Epoch
from repro.ibc.identifiers import ChannelId, PortId
from repro.ibc.packet import Acknowledgement, Packet
from repro.trie import SealableTrie
from repro.trie.store import ProvableStore, path_key, seq_key


class TestHashingVectors:
    def test_hash_concat(self):
        assert hash_concat(b"x", b"y").hex() == (
            "134dc4d08f99ce0e5d2cfccbe1dae2c1e52caea62add95f8bf142cfe6e39e5e4"
        )

    def test_merkle_root(self):
        assert merkle_root([b"a", b"b", b"c"]).hex() == (
            "e9636069c740c9ff51625b01a0b040396d265a9b920cc6febdfa5ecc9f58ecce"
        )


class TestTrieVectors:
    # Conscious protocol bump: leaf hashes now bind a *value commitment*
    # (hash of the value) instead of the raw value, so sealed leaf stubs
    # keep a fixed-size, re-pathable core.  All trie roots changed; the
    # invariants (seal root-neutral, delete == fresh rebuild) did not.
    def build(self):
        trie = SealableTrie()
        for index in range(16):
            key = hashlib.sha256(index.to_bytes(4, "big")).digest()
            trie.set(key, f"value-{index}".encode())
        return trie

    def test_sixteen_entry_root(self):
        assert self.build().root_hash.hex() == (
            "d33dada23a3e1dfac3c0e61c79e1fdd68170646bee4c00c4ba84a0df916b2a2e"
        )

    def test_seal_is_root_neutral(self):
        trie = self.build()
        trie.seal(hashlib.sha256((0).to_bytes(4, "big")).digest())
        assert trie.root_hash.hex() == (
            "d33dada23a3e1dfac3c0e61c79e1fdd68170646bee4c00c4ba84a0df916b2a2e"
        )

    def test_delete_root(self):
        trie = self.build()
        trie.seal(hashlib.sha256((0).to_bytes(4, "big")).digest())
        trie.delete(hashlib.sha256((5).to_bytes(4, "big")).digest())
        assert trie.root_hash.hex() == (
            "b1e0dd190b3eea40574c790253989781e0ecba324ad5dbcee479e0c9179722c4"
        )


class TestStoreVectors:
    def test_store_root(self):
        store = ProvableStore()
        store.set("connections/connection-0", b"conn")
        store.set_seq("commitments/ports/transfer/channels/channel-0", 3, b"\xaa" * 32)
        # Bumped with the value-commitment leaf hash (see TestTrieVectors).
        assert store.root_hash.hex() == (
            "2b2ea6cc7faa674f16d780a1c4b638aca27db42d31768d6042ccbd7e0bcadfdf"
        )

    def test_path_key(self):
        assert path_key("clients/client-0/clientState").hex() == (
            "83c641c82009cc4b8ffeae75a9bc2114dabd8d60196a8cdb957284b49f3cb5e8"
        )

    def test_seq_key_layout(self):
        key = seq_key("receipts/ports/transfer/channels/channel-0", 7)
        assert key.hex() == (
            "35d25534a57ebcbcc0194357d27243443f69f3d0a7f3c8800000000000000007"
        )
        # 24-byte hashed prefix, 8-byte big-endian sequence.
        assert key[24:] == (7).to_bytes(8, "big")


class TestIbcVectors:
    def packet(self):
        return Packet(5, PortId("transfer"), ChannelId("channel-0"),
                      PortId("transfer"), ChannelId("channel-1"),
                      b"payload", 123.456)

    def test_packet_commitment(self):
        assert self.packet().commitment().hex() == (
            "1dd5c2aa4424b0242941d629eb3e152e51d2facbed912e508b29acae65d6eef6"
        )

    def test_packet_wire_bytes(self):
        assert self.packet().to_bytes().hex() == (
            "05087472616e73666572096368616e6e656c2d30087472616e73666572"
            "096368616e6e656c2d31077061796c6f6164c0c407"
        )

    def test_ack_commitment(self):
        assert Acknowledgement.ok(b"res").commitment().hex() == (
            "9bd7a04d838c8469f03480afbad6fe553af729dc414aec28b4ba29bfd45bd7cd"
        )


class TestGuestVectors:
    def epoch(self):
        scheme = SimSigScheme()
        keypairs = [
            scheme.keypair_from_seed(bytes([9]) + i.to_bytes(4, "big") + bytes(27))
            for i in range(3)
        ]
        return Epoch(
            epoch_id=2,
            validators={kp.public_key: 100 * (i + 1) for i, kp in enumerate(keypairs)},
            quorum_stake=401,
        )

    def test_epoch_hash(self):
        assert self.epoch().canonical_hash().hex() == (
            "6da71c731032ed3e939a18b53e574256333a3a7ab7207cb47b49c23544fd6ef1"
        )

    def test_block_fingerprint(self):
        epoch = self.epoch()
        header = GuestBlockHeader(
            height=9, prev_hash=Hash.of(b"parent"), timestamp=1234.5,
            host_slot=3086, state_root=Hash.of(b"state"), epoch_id=2,
            epoch_hash=epoch.canonical_hash(),
            packet_hashes=(Hash.of(b"p1"), Hash.of(b"p2")),
            last_in_epoch=True, next_epoch_hash=Hash.of(b"next"),
        )
        assert header.fingerprint().hex() == (
            "ece8288a6908c3a39975e9bcb1d9f39b740c440b68f7b480bf72db200ba25885"
        )

    def test_sign_message_layout(self):
        fingerprint = bytes.fromhex(
            "ece8288a6908c3a39975e9bcb1d9f39b740c440b68f7b480bf72db200ba25885"
        )
        message = sign_message(9, fingerprint)
        assert message[:10] == b"guest-sign"
        assert message[10:18] == (9).to_bytes(8, "big")
        assert message[18:] == fingerprint


class TestAccountabilityVectors:
    """The AccountabilityProof encoding (docs/ACCOUNTABILITY.md).

    Proofs are submitted on chain and relayed to counterparty light
    clients, so both the wire bytes and the dedup ``proof_id`` are
    protocol surface: a fisherman and a contract that disagree on either
    can no longer prosecute the same equivocation exactly once.
    """

    def proof(self):
        scheme = SimSigScheme()
        keypairs = [
            scheme.keypair_from_seed(bytes([9]) + i.to_bytes(4, "big") + bytes(27))
            for i in range(3)
        ]
        epoch = Epoch(
            epoch_id=2,
            validators={kp.public_key: 100 * (i + 1)
                        for i, kp in enumerate(keypairs)},
            quorum_stake=401,
        )

        def side(commitment):
            message = sign_message(9, commitment)
            return Finalisation(
                commitment=commitment,
                sign_bytes=message,
                signatures=tuple(sorted(
                    ((kp.public_key, kp.sign(message)) for kp in keypairs),
                    key=lambda item: bytes(item[0]))),
            )

        # Built from the lexicographically *larger* commitment first:
        # canonicalisation must reorder, or the id splits in two.
        return build_proof("guest", 9, bytes(epoch.canonical_hash()),
                           side(b"\x02" * 32), side(b"\x01" * 32))

    def test_wire_bytes(self):
        wire = self.proof().to_bytes()
        assert len(wire) == 788
        assert hashlib.sha256(wire).hexdigest() == (
            "e6d4f7135d672cb9c0dc06de5e1e39142f29c2b7570a092e84aa4bc42837952b"
        )

    def test_round_trip_is_exact(self):
        proof = self.proof()
        assert AccountabilityProof.from_bytes(proof.to_bytes()) == proof

    def test_proof_id(self):
        proof = self.proof()
        assert proof.proof_id().hex() == (
            "47978fd47a61c97fac9993de0eab51c488936bf2958035cd8af360cbd72b6a26"
        )
        # Canonical side order: smaller commitment first.
        assert proof.first.commitment == b"\x01" * 32
