"""The deterministic chaos subsystem (docs/CHAOS.md).

Covers the fault-plan DSL, the gossip fault/isolation edges, each host
fault edge through a live deployment, the Byzantine actor faults end to
end (equivocation -> Fisherman -> SLASH, forged signatures rejected),
the full storm smoke with its fault-free differential twin, and the
checkpoint compatibility of a mid-storm world.

Note: ``tests/test_chaos.py`` is the older randomized packet-storm
invariant suite; this file tests the *injected*-fault subsystem.
"""

import json

import pytest

from repro import Deployment, DeploymentConfig
from repro.chaos import FAULT_KINDS, ChaosInjector, FaultPlan, FaultSpec
from repro.chaos.injector import GossipVerdict
from repro.chaos.plan import FaultPlanError
from repro.checkpoint import restore_world, snapshot_world
from repro.checkpoint.snapshot import world_roots
from repro.errors import HostUnavailableError
from repro.experiments.chaos import (
    check_chaos_smoke,
    ledger_fingerprint,
    run_chaos_smoke,
    smoke_config,
    storm_plan,
)
from repro.guest.config import GuestConfig
from repro.host import Address, BaseFee, Instruction, Transaction
from repro.sim import Simulation
from repro.sim.gossip import GossipNetwork
from repro.validators.profiles import simple_profiles


def make_dep(seed, validators=4, **kw):
    kw.setdefault("with_fisherman", True)
    kw.setdefault("tracing", True)
    return Deployment(DeploymentConfig(
        seed=seed,
        guest=GuestConfig(delta_seconds=90.0, min_stake_lamports=1),
        profiles=simple_profiles(validators),
        **kw,
    ))


def null_tx():
    """A transaction that never needs to execute (chaos edges fire at
    submission time, before fees or programs are consulted)."""
    return Transaction(
        payer=Address.derive("chaos-test-payer"),
        instructions=(Instruction(Address.derive("no-program"), (), b"x"),),
        fee_strategy=BaseFee(),
        compute_budget=10_000,
    )


# ----------------------------------------------------------------------
# The fault-plan DSL
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan().add("host_meltdown", at=1.0)

    def test_negative_times_rejected(self):
        with pytest.raises(FaultPlanError, match="negative start"):
            FaultPlan().add("host_blackout", at=-1.0, duration=5.0)
        with pytest.raises(FaultPlanError, match="negative duration"):
            FaultPlan().add("host_blackout", at=1.0, duration=-5.0)

    def test_windowed_kind_needs_duration(self):
        with pytest.raises(FaultPlanError, match="needs duration"):
            FaultPlan().add("host_blackout", at=1.0)

    def test_targeted_kind_needs_target(self):
        with pytest.raises(FaultPlanError, match="needs a target"):
            FaultPlan().add("validator_crash", at=1.0, duration=5.0)

    def test_probability_bounds(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultPlan().add("host_tx_drop", at=1.0, duration=5.0,
                            probability=0.0)
        with pytest.raises(FaultPlanError, match="probability"):
            FaultPlan().add("gossip_drop", at=1.0, duration=5.0,
                            probability=1.5)

    def test_target_index_parses_or_raises(self):
        spec = FaultSpec("validator_crash", at=0.0, duration=1.0, target="3")
        assert spec.target_index() == 3
        bad = FaultSpec("gossip_partition", at=0.0, duration=1.0,
                        target="fisherman")
        with pytest.raises(FaultPlanError, match="not an index"):
            bad.target_index()

    def test_horizon_and_of_kind(self):
        plan = (FaultPlan()
                .add("host_blackout", at=10.0, duration=20.0)
                .add("relayer_crash", at=50.0, duration=5.0)
                .add("validator_equivocate", at=90.0, target="1"))
        assert plan.horizon() == 90.0
        assert len(plan.of_kind("host_blackout")) == 1
        assert plan.of_kind("cranker_crash") == []

    def test_json_roundtrip_is_exact_and_stable(self):
        plan = storm_plan(smoke_config())
        text = plan.to_json()
        back = FaultPlan.from_json(text)
        assert back == plan
        assert back.to_json() == text  # stable (sorted keys)

    def test_every_kind_has_a_shape(self):
        assert len(FAULT_KINDS) == 14
        for kind, shape in FAULT_KINDS.items():
            assert len(shape) == 4, kind

    def test_storm_plan_covers_every_kind(self):
        plan = storm_plan(smoke_config())
        assert {spec.kind for spec in plan.specs} == set(FAULT_KINDS)

    def test_arming_twice_is_an_error(self):
        dep = make_dep(301)
        plan = FaultPlan().add("host_blackout", at=1.0, duration=2.0)
        injector = ChaosInjector(dep, plan).arm()
        with pytest.raises(FaultPlanError, match="already armed"):
            injector.arm()


# ----------------------------------------------------------------------
# Gossip: isolation, unsubscribe, chaos verdicts
# ----------------------------------------------------------------------


class _Policy:
    """Stub chaos policy returning a fixed verdict per delivery."""

    def __init__(self, verdict_for):
        self.verdict_for = verdict_for

    def on_delivery(self, topic, label):
        return self.verdict_for(topic, label)


class TestGossipFaults:
    def setup_method(self):
        self.sim = Simulation(seed=11)
        self.net = GossipNetwork(self.sim, mean_delay=0.5)

    def test_raising_subscriber_is_isolated(self):
        got = []

        def bad(message):
            raise RuntimeError("observer bug")

        self.net.subscribe("topic", bad, label="bad")
        self.net.subscribe("topic", got.append, label="good")
        self.net.publish("topic", "hello")
        self.sim.run_until(30.0)
        assert got == ["hello"]
        assert self.net.subscriber_errors == {"bad": 1}

    def test_unsubscribe_suppresses_scheduled_deliveries(self):
        got = []
        sub = self.net.subscribe("topic", got.append, label="gone")
        self.net.publish("topic", "in-flight")   # delivery is delayed
        self.net.unsubscribe(sub)                # ...and the actor crashes
        self.sim.run_until(30.0)
        self.net.publish("topic", "later")
        self.sim.run_until(60.0)
        assert got == []

    def test_drop_verdict_loses_the_delivery(self):
        got = []
        self.net.subscribe("topic", got.append)
        self.net.chaos = _Policy(lambda t, l: GossipVerdict(drop=True))
        self.net.publish("topic", "lost")
        self.sim.run_until(30.0)
        assert got == []

    def test_duplicate_verdict_multiplies_the_delivery(self):
        got = []
        self.net.subscribe("topic", got.append)
        self.net.chaos = _Policy(lambda t, l: GossipVerdict(duplicates=2))
        self.net.publish("topic", "echo")
        self.sim.run_until(30.0)
        assert got == ["echo"] * 3  # the original plus two copies

    def test_partition_matches_on_label(self):
        fisher, other = [], []
        self.net.subscribe("topic", fisher.append, label="fisherman")
        self.net.subscribe("topic", other.append, label="relayer")
        self.net.chaos = _Policy(
            lambda t, label: GossipVerdict(drop="fisherman" in label))
        self.net.publish("topic", "claim")
        self.sim.run_until(30.0)
        assert fisher == [] and other == ["claim"]

    def test_delay_verdict_defers_but_delivers(self):
        got = []
        self.net.subscribe("topic", lambda m: got.append(self.sim.now))
        self.net.chaos = _Policy(lambda t, l: GossipVerdict(extra_delay=20.0))
        self.net.publish("topic", "slow")
        self.sim.run_until(10.0)
        assert got == []
        self.sim.run_until(60.0)
        assert len(got) == 1 and got[0] >= 20.0


# ----------------------------------------------------------------------
# Host fault edges (through a live deployment)
# ----------------------------------------------------------------------


class TestHostFaultEdges:
    def test_blackout_refuses_synchronously(self):
        dep = make_dep(311)
        plan = FaultPlan().add("host_blackout", at=0.0, duration=50.0)
        ChaosInjector(dep, plan).arm()
        with pytest.raises(HostUnavailableError):
            dep.host.submit(null_tx())
        with pytest.raises(HostUnavailableError):
            dep.host.submit_bundle([null_tx()], tip_lamports=0)
        counters = dep.trace_report().counters
        assert counters.get("chaos.host.rpc_refused", 0) >= 2

    def test_tx_drop_reports_a_failed_receipt(self):
        dep = make_dep(312)
        plan = FaultPlan().add("host_tx_drop", at=0.0, duration=50.0,
                               probability=1.0)
        ChaosInjector(dep, plan).arm()
        receipts = []
        dep.host.submit(null_tx(), on_result=receipts.append)
        dep.run_for(30.0)
        assert len(receipts) == 1
        assert not receipts[0].success
        assert "dropped in transit" in receipts[0].error
        assert dep.trace_report().counters.get("chaos.host.tx_dropped") == 1

    def test_fee_spike_pins_congestion(self):
        dep = make_dep(313)
        t0 = dep.sim.now
        plan = FaultPlan().add("host_fee_spike", at=10.0, duration=30.0,
                               magnitude=0.9)
        ChaosInjector(dep, plan).arm()
        assert dep.host.congestion_at(t0 + 20.0) == 0.9
        assert dep.host.congestion_at(t0 + 45.0) != 0.9  # window over

    def test_slot_stall_halts_block_production(self):
        dep = make_dep(314)
        dep.run_for(5.0)
        plan = FaultPlan().add("host_slot_stall", at=0.0, duration=10.0)
        ChaosInjector(dep, plan).arm()
        slot_before = dep.host.slot
        dep.run_for(9.0)
        assert dep.host.slot == slot_before        # leader offline
        dep.run_for(30.0)
        assert dep.host.slot > slot_before         # production resumed
        assert dep.trace_report().counters.get("chaos.host.slots_stalled", 0) > 0


# ----------------------------------------------------------------------
# Byzantine actor faults, end to end
# ----------------------------------------------------------------------


class TestActorFaults:
    def test_equivocation_is_prosecuted_and_slashed(self):
        dep = make_dep(321)
        dep.establish_link()
        offender = dep.validator_keypair(1).public_key
        stake_before = dep.contract.staking.stake_of(offender)
        assert stake_before > 0

        plan = FaultPlan().add("validator_equivocate", at=5.0, duration=10.0,
                               target="1", magnitude=3)
        ChaosInjector(dep, plan).arm()
        dep.run_for(240.0)

        assert dep.contract.staking.stake_of(offender) == 0
        assert any(report.accepted for report in dep.fisherman.reports)
        counters = dep.trace_report().counters
        assert counters.get("chaos.equivocations.published") == 3

    def test_bad_signatures_are_rejected_not_slashed(self):
        dep = make_dep(322)
        dep.establish_link()
        target = dep.validator_keypair(1).public_key
        stake_before = dep.contract.staking.stake_of(target)

        plan = FaultPlan().add("validator_bad_signature", at=5.0,
                               duration=5.0, target="1", magnitude=2)
        ChaosInjector(dep, plan).arm()
        dep.run_for(120.0)

        counters = dep.trace_report().counters
        assert counters.get("chaos.bad_signature.rejected", 0) >= 1
        assert "chaos.bad_signature.ACCEPTED" not in counters
        # A forged message is rejected by the contract, not slashable
        # evidence: no honest double-sign exists.
        assert dep.contract.staking.stake_of(target) == stake_before

    def test_validator_crash_stalls_then_recovers(self):
        dep = make_dep(323)
        dep.establish_link()
        plan = FaultPlan()
        for index in range(1, 5):   # every validator: quorum impossible
            plan.add("validator_crash", at=0.0, duration=120.0,
                     target=str(index))
        ChaosInjector(dep, plan).arm()
        dep.contract.bank.mint("alice", "GUEST", 100)
        guest_chan = dep.relayer.guest_channel[1]
        payload = dep.contract.transfer.make_payload(
            guest_chan, "GUEST", 10, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(100.0)
        stalled = dep.contract.head
        assert not stalled.finalised
        dep.run_for(300.0)
        assert stalled.finalised


# ----------------------------------------------------------------------
# The storm smoke: convergence + determinism + differential twin
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def smoke_record():
    return run_chaos_smoke()


class TestStormSmoke:
    def test_smoke_converges(self, smoke_record):
        assert check_chaos_smoke(smoke_record) == []
        assert smoke_record["converged"]

    def test_every_fault_began_and_recovered(self, smoke_record):
        for fault in smoke_record["faults"]:
            assert fault["began"], fault["kind"]
            assert fault["recovered_after"] is not None, fault["kind"]
            assert fault["recovered_after"] >= 0.0, fault["kind"]

    def test_differential_twin_matches(self, smoke_record):
        fps = smoke_record["fingerprints"]
        assert fps["chaos"] == fps["fault_free"]

    def test_record_is_bit_reproducible(self, smoke_record):
        again = run_chaos_smoke()
        assert (json.dumps(again, sort_keys=True)
                == json.dumps(smoke_record, sort_keys=True))

    def test_plan_embedded_in_record_roundtrips(self, smoke_record):
        plan = FaultPlan.from_dict(smoke_record["plan"])
        assert {spec.kind for spec in plan.specs} == set(FAULT_KINDS)


# ----------------------------------------------------------------------
# Checkpoint compatibility of a mid-storm world
# ----------------------------------------------------------------------


class TestChaosCheckpoint:
    def test_mid_storm_snapshot_restores_and_replays(self):
        def build():
            dep = make_dep(331)
            guest_chan, cp_chan = dep.establish_link()
            plan = (FaultPlan(label="ckpt")
                    .add("host_blackout", at=5.0, duration=20.0)
                    .add("validator_equivocate", at=8.0, duration=4.0,
                         target="1", magnitude=2)
                    .add("relayer_crash", at=12.0, duration=10.0))
            ChaosInjector(dep, plan).arm()
            dep.counterparty.bank.mint("carol", "PICA", 1_000)

            def send():
                data = dep.counterparty.transfer.make_payload(
                    cp_chan, "PICA", 50, "carol", "dave")
                dep.counterparty.ibc.send_packet(
                    dep.counterparty.transfer_port, cp_chan, data, 0.0)

            for _ in range(3):
                dep.counterparty.submit(send)
            dep.run_for(10.0)   # mid-storm: blackout on, claims gossiping
            return dep

        dep = build()
        checkpoint = snapshot_world(dep)
        restored, _extras = restore_world(checkpoint)
        assert world_roots(restored) == world_roots(dep)
        assert restored.sim.pending_events() == dep.sim.pending_events()

        # Replay both worlds past the storm: bit-identical trajectories,
        # including the remaining fault firings and recoveries.
        dep.run_for(400.0)
        restored.run_for(400.0)
        assert world_roots(restored) == world_roots(dep)
        assert (restored.trace_report().counters
                == dep.trace_report().counters)
        assert ledger_fingerprint(restored) == ledger_fingerprint(dep)
        offender = dep.validator_keypair(1).public_key
        assert dep.contract.staking.stake_of(offender) == 0
        assert restored.contract.staking.stake_of(offender) == 0
