"""Unit tests for the metrics package (stats and table rendering)."""

import math

import pytest

from repro.metrics.stats import Summary, correlation, fraction_below, percentile, summarize
from repro.metrics.table import format_distribution, format_table


class TestPercentile:
    def test_endpoints(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 4.0

    def test_median_even(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_median_odd(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == 2.5

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestSummarize:
    def test_known_values(self):
        summary = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert summary.count == 8
        assert summary.minimum == 2.0
        assert summary.maximum == 9.0
        assert summary.mean == 5.0
        assert summary.std == pytest.approx(2.0)  # classic example
        assert summary.median == 4.5

    def test_order_independent(self):
        a = summarize([3.0, 1.0, 2.0])
        b = summarize([1.0, 2.0, 3.0])
        assert a == b

    def test_row_formatting(self):
        summary = summarize([1.0, 2.0, 3.0])
        row = summary.row(digits=1)
        assert row[0] == "1.0" and row[4] == "3.0"
        assert len(row) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestFractionBelow:
    def test_basic(self):
        assert fraction_below([1.0, 2.0, 3.0, 4.0], 2.5) == 0.5

    def test_strictness(self):
        assert fraction_below([1.0, 2.0], 2.0) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fraction_below([], 1.0)


class TestCorrelation:
    def test_perfect_positive(self):
        assert correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        import random
        rng = random.Random(5)
        xs = [rng.random() for _ in range(2_000)]
        ys = [rng.random() for _ in range(2_000)]
        assert abs(correlation(xs, ys)) < 0.08

    def test_constant_series_is_zero(self):
        assert correlation([1.0, 1.0, 1.0], [1, 2, 3]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            correlation([1.0], [1.0, 2.0])


class TestTableRendering:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", "1"], ["bbbb", "22"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # uniform width

    def test_title_included(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.startswith("My Table")

    def test_short_rows_padded(self):
        text = format_table(["a", "b"], [["only-a"]])
        assert "only-a" in text

    def test_distribution_thresholds(self):
        text = format_distribution([1.0, 2.0, 3.0, 4.0], "s", thresholds=[2.5])
        assert "50.0%<2.5s" in text
        assert "n=4" in text
