"""Unit and integration tests for the Solana-like host chain simulator."""

import pytest

from repro.crypto.simsig import SimSigScheme
from repro.errors import (
    AccountSizeError,
    ComputeBudgetExceededError,
    HostError,
    InsufficientFundsError,
    ProgramError,
    TransactionTooLargeError,
)
from repro.host import (
    Address,
    BaseFee,
    BundleFee,
    HostChain,
    HostConfig,
    Instruction,
    InvokeContext,
    PriorityFee,
    Program,
    SigVerify,
    Transaction,
)
from repro.sim import Simulation
from repro.units import (
    BASE_FEE_LAMPORTS_PER_SIGNATURE,
    MAX_ACCOUNT_BYTES,
    MAX_TRANSACTION_BYTES,
    lamports_to_usd,
    rent_exempt_deposit,
    sol_to_lamports,
)

PAYER = Address.derive("payer")


class CounterProgram(Program):
    """Test program: counts invocations in an account's first byte; can be
    told to fail or to burn compute."""

    def __init__(self):
        self._id = Address.derive("counter-program")

    @property
    def program_id(self) -> Address:
        return self._id

    def execute(self, ctx: InvokeContext, data: bytes) -> None:
        if data == b"fail":
            raise ProgramError("told to fail")
        if data == b"burn":
            ctx.meter.charge(10_000_000)
        account = ctx.account(ctx.instruction_accounts[0])
        # Account data is immutable bytes: programs replace the blob.
        current = account.data if account.data else bytes(8)
        account.data = bytes([current[0] + 1]) + current[1:]
        ctx.emit("Counted", value=account.data[0])


@pytest.fixture
def env():
    sim = Simulation(seed=3)
    chain = HostChain(sim, SimSigScheme(), HostConfig())
    chain.airdrop(PAYER, sol_to_lamports(1_000.0))
    program = CounterProgram()
    chain.deploy(program)
    state = Address.derive("counter-state")
    return sim, chain, program, state


def make_tx(program, state, data=b"tick", fee=BaseFee(), budget=200_000):
    return Transaction(
        payer=PAYER,
        instructions=(Instruction(program.program_id, (state,), data),),
        fee_strategy=fee,
        compute_budget=budget,
    )


class TestExecution:
    def test_successful_execution_mutates_state(self, env):
        sim, chain, program, state = env
        results = []
        chain.submit(make_tx(program, state), on_result=results.append)
        sim.run_until(30.0)
        assert len(results) == 1
        assert results[0].success
        assert chain.accounts.account(state).data[0] == 1

    def test_failed_program_rolls_back(self, env):
        sim, chain, program, state = env
        results = []
        chain.submit(make_tx(program, state), on_result=results.append)
        sim.run_until(30.0)
        chain.submit(make_tx(program, state, data=b"fail"), on_result=results.append)
        sim.run_until(60.0)
        assert [r.success for r in results] == [True, False]
        assert chain.accounts.account(state).data[0] == 1  # unchanged

    def test_fee_charged_even_on_failure(self, env):
        sim, chain, program, state = env
        balance_before = chain.accounts.balance(PAYER)
        results = []
        chain.submit(make_tx(program, state, data=b"fail"), on_result=results.append)
        sim.run_until(30.0)
        assert results[0].fee_paid == BASE_FEE_LAMPORTS_PER_SIGNATURE
        assert chain.accounts.balance(PAYER) == balance_before - BASE_FEE_LAMPORTS_PER_SIGNATURE

    def test_compute_budget_enforced(self, env):
        sim, chain, program, state = env
        results = []
        chain.submit(make_tx(program, state, data=b"burn"), on_result=results.append)
        sim.run_until(30.0)
        assert not results[0].success
        assert "CU" in results[0].error

    def test_oversized_transaction_rejected_at_submit(self, env):
        sim, chain, program, state = env
        big = make_tx(program, state, data=b"x" * MAX_TRANSACTION_BYTES)
        with pytest.raises(TransactionTooLargeError):
            chain.submit(big)

    def test_size_cap_is_1232(self):
        assert MAX_TRANSACTION_BYTES == 1232

    def test_unknown_program_fails_tx(self, env):
        sim, chain, program, state = env
        tx = Transaction(
            payer=PAYER,
            instructions=(Instruction(Address.derive("nowhere"), (), b""),),
            fee_strategy=BaseFee(),
        )
        results = []
        chain.submit(tx, on_result=results.append)
        sim.run_until(30.0)
        assert not results[0].success

    def test_insufficient_fee_balance(self, env):
        sim, chain, program, state = env
        poor = Address.derive("poor")
        tx = Transaction(
            payer=poor,
            instructions=(Instruction(program.program_id, (state,), b"tick"),),
            fee_strategy=BaseFee(),
        )
        results = []
        chain.submit(tx, on_result=results.append)
        sim.run_until(30.0)
        assert not results[0].success
        assert results[0].fee_paid == 0

    def test_events_delivered_to_subscribers(self, env):
        sim, chain, program, state = env
        seen = []
        chain.subscribe("Counted", seen.append)
        chain.submit(make_tx(program, state))
        sim.run_until(30.0)
        assert len(seen) == 1
        assert seen[0].payload["value"] == 1

    def test_slots_advance(self, env):
        sim, chain, program, state = env
        sim.run_until(4.0)
        assert chain.slot == 10  # 4 s of 0.4 s slots


class TestSigVerifyPrecompile:
    def test_valid_signature_exposed_to_program(self, env):
        sim, chain, program, state = env
        scheme = chain.scheme
        keypair = scheme.keypair_from_seed(bytes(range(32)))
        message = b"block fingerprint"
        captured = {}

        class Inspector(Program):
            @property
            def program_id(self):
                return Address.derive("inspector")

            def execute(self, ctx, data):
                captured["ok"] = ctx.is_signature_verified(keypair.public_key, message)

        inspector = Inspector()
        chain.deploy(inspector)
        tx = Transaction(
            payer=PAYER,
            instructions=(Instruction(inspector.program_id, (), b""),),
            fee_strategy=BaseFee(),
            sig_verifies=(SigVerify(keypair.public_key, message, keypair.sign(message)),),
        )
        chain.submit(tx)
        sim.run_until(30.0)
        assert captured["ok"] is True

    def test_invalid_signature_fails_whole_tx(self, env):
        sim, chain, program, state = env
        scheme = chain.scheme
        keypair = scheme.keypair_from_seed(bytes(range(32)))
        other = scheme.keypair_from_seed(bytes(32))
        tx = Transaction(
            payer=PAYER,
            instructions=(Instruction(program.program_id, (state,), b"tick"),),
            fee_strategy=BaseFee(),
            sig_verifies=(SigVerify(other.public_key, b"msg", keypair.sign(b"msg")),),
        )
        results = []
        chain.submit(tx, on_result=results.append)
        sim.run_until(30.0)
        assert not results[0].success
        assert chain.accounts.account(state).data == b""

    def test_each_verify_costs_a_signature_fee(self, env):
        """§V-B: 0.1 ¢ per transaction plus 0.1 ¢ per verified signature."""
        sim, chain, program, state = env
        scheme = chain.scheme
        keypair = scheme.keypair_from_seed(bytes(range(32)))
        entries = tuple(
            SigVerify(keypair.public_key, bytes([i]), keypair.sign(bytes([i])))
            for i in range(3)
        )
        tx = Transaction(
            payer=PAYER,
            instructions=(Instruction(program.program_id, (state,), b"tick"),),
            fee_strategy=BaseFee(),
            sig_verifies=entries,
        )
        results = []
        chain.submit(tx, on_result=results.append)
        sim.run_until(30.0)
        assert results[0].fee_paid == 4 * BASE_FEE_LAMPORTS_PER_SIGNATURE


class TestFees:
    def test_priority_fee_amount(self, env):
        sim, chain, program, state = env
        fee = PriorityFee(compute_unit_price=5_000_000)
        tx = make_tx(program, state, fee=fee, budget=1_400_000)
        results = []
        chain.submit(tx, on_result=results.append)
        sim.run_until(30.0)
        expected = BASE_FEE_LAMPORTS_PER_SIGNATURE + 7_000_000
        assert results[0].fee_paid == expected
        # ≈ 1.40 USD, the Fig. 3 priority cluster.
        assert lamports_to_usd(expected) == pytest.approx(1.40, abs=0.01)

    def test_bundle_tip_paid_once(self, env):
        sim, chain, program, state = env
        txs = [make_tx(program, state) for _ in range(3)]
        results = []
        chain.submit_bundle(txs, tip_lamports=15_090_000, on_result=results.append)
        sim.run_until(30.0)
        (receipts,) = results
        fees = sorted(r.fee_paid for r in receipts)
        assert fees[0] == BASE_FEE_LAMPORTS_PER_SIGNATURE
        assert fees[-1] == BASE_FEE_LAMPORTS_PER_SIGNATURE + 15_090_000

    def test_bundle_lands_in_single_block(self, env):
        """§V-A: all ReceivePacket transactions land in one block."""
        sim, chain, program, state = env
        txs = [make_tx(program, state) for _ in range(5)]
        results = []
        chain.submit_bundle(txs, tip_lamports=1_000, on_result=results.append)
        sim.run_until(30.0)
        (receipts,) = results
        assert len({r.slot for r in receipts}) == 1
        assert all(r.success for r in receipts)
        assert chain.accounts.account(state).data[0] == 5

    def test_bundle_atomic_failure(self, env):
        sim, chain, program, state = env
        txs = [
            make_tx(program, state),
            make_tx(program, state, data=b"fail"),
            make_tx(program, state),
        ]
        results = []
        chain.submit_bundle(txs, tip_lamports=1_000, on_result=results.append)
        sim.run_until(30.0)
        (receipts,) = results
        assert not any(r.success for r in receipts)
        assert chain.accounts.account(state).data == b""

    def test_empty_bundle_rejected(self, env):
        sim, chain, program, state = env
        with pytest.raises(HostError):
            chain.submit_bundle([], tip_lamports=0)

    def test_base_fee_slower_than_priority_under_congestion(self):
        """The latency ordering that motivates §VI-B."""
        sim = Simulation(seed=11)
        config = HostConfig(base_congestion=0.7, diurnal_congestion=0.0, spike_probability=0.0)
        chain = HostChain(sim, SimSigScheme(), config)
        chain.airdrop(PAYER, sol_to_lamports(1_000.0))
        program = CounterProgram()
        chain.deploy(program)
        state = Address.derive("counter-state")

        base_lat, prio_lat = [], []
        for i in range(60):
            submit_time = i * 10.0
            for fee, sink in ((BaseFee(), base_lat), (PriorityFee(1_000), prio_lat)):
                def submit(fee=fee, sink=sink, t0=submit_time):
                    chain.submit(
                        make_tx(program, state, fee=fee),
                        on_result=lambda r, t0=t0, sink=sink: sink.append(r.time - t0),
                    )
                sim.schedule_at(submit_time, submit)
        sim.run_until(700.0)
        assert len(base_lat) == len(prio_lat) == 60
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(prio_lat) < mean(base_lat)


class TestAccountsAndRent:
    def test_allocation_takes_rent_deposit(self, env):
        sim, chain, program, state = env
        before = chain.accounts.balance(PAYER)
        size = 1024
        chain.accounts.allocate(PAYER, Address.derive("data"), size, program.program_id)
        assert before - chain.accounts.balance(PAYER) == rent_exempt_deposit(size)

    def test_ten_mib_account_deposit_matches_paper(self, env):
        """§V-D: the 10 MiB guest state account required ≈ 14.6 k USD."""
        deposit = rent_exempt_deposit(MAX_ACCOUNT_BYTES)
        assert lamports_to_usd(deposit) == pytest.approx(14_600, rel=0.01)

    def test_oversized_account_rejected(self, env):
        sim, chain, program, state = env
        with pytest.raises(AccountSizeError):
            chain.accounts.allocate(
                PAYER, Address.derive("big"), MAX_ACCOUNT_BYTES + 1, program.program_id
            )

    def test_deallocate_refunds_deposit(self, env):
        sim, chain, program, state = env
        addr = Address.derive("data")
        before = chain.accounts.balance(PAYER)
        chain.accounts.allocate(PAYER, addr, 4096, program.program_id)
        refund = chain.accounts.deallocate(addr, PAYER)
        assert refund == rent_exempt_deposit(4096)
        assert chain.accounts.balance(PAYER) == before

    def test_transfer_requires_funds(self, env):
        sim, chain, program, state = env
        with pytest.raises(InsufficientFundsError):
            chain.accounts.transfer(Address.derive("empty"), PAYER, 1)

    def test_double_allocation_rejected(self, env):
        sim, chain, program, state = env
        addr = Address.derive("data")
        chain.accounts.allocate(PAYER, addr, 64, program.program_id)
        with pytest.raises(HostError):
            chain.accounts.allocate(PAYER, addr, 64, program.program_id)


class TestBundleBlockBoundary:
    """A bundle must never be split by the block transaction limit."""

    def _inject(self, chain, transactions, bundle_id=None, on_result=None):
        """Place pending transactions straight into the mempool with
        ready_time 0 (skipping the stochastic submit/scheduling delays),
        exactly as _arrive would leave them."""
        from repro.host.chain import _PendingTx
        peers = [] if bundle_id is not None else None
        for tx in transactions:
            pending = _PendingTx(
                transaction=tx, ready_time=0.0, on_result=on_result,
                bundle_id=bundle_id, bundle_tip=0, bundle_peers=peers,
            )
            if peers is not None:
                peers.append(pending)
            chain._mempool.append(pending)

    def test_bundle_defers_whole_when_block_is_full(self):
        sim = Simulation(seed=9)
        chain = HostChain(sim, SimSigScheme(), HostConfig(block_tx_limit=4))
        chain.airdrop(PAYER, sol_to_lamports(1_000.0))
        program = CounterProgram()
        chain.deploy(program)
        state = Address.derive("counter-state")

        receipts = []
        singles = [make_tx(program, state) for _ in range(3)]
        bundle = [make_tx(program, state) for _ in range(2)]
        self._inject(chain, singles, on_result=receipts.append)
        self._inject(chain, bundle, bundle_id=777, on_result=receipts.append)
        sim.run_until(30.0)

        assert len(receipts) == 5
        assert all(r.success for r in receipts)
        bundle_slots = {r.slot for r in receipts if r.bundle_id == 777}
        single_slots = {r.slot for r in receipts if r.bundle_id is None}
        # The three singles fill the first block; the bundle (2 members,
        # 1 slot of room) must defer whole to the next slot — not split.
        assert len(bundle_slots) == 1
        assert bundle_slots == {min(single_slots) + 1}

    def test_bundle_larger_than_block_limit_fails_atomically(self):
        sim = Simulation(seed=9)
        chain = HostChain(sim, SimSigScheme(), HostConfig(block_tx_limit=1))
        chain.airdrop(PAYER, sol_to_lamports(1_000.0))
        program = CounterProgram()
        chain.deploy(program)
        state = Address.derive("counter-state")

        results = []
        txs = [make_tx(program, state) for _ in range(3)]
        chain.submit_bundle(txs, tip_lamports=1_000, on_result=results.append)
        sim.run_until(30.0)

        (receipts,) = results
        # Can never fit any block: every member fails, nothing executes,
        # no fee is charged — instead of executing one-per-slot.
        assert [r.success for r in receipts] == [False, False, False]
        assert all("block limit" in r.error for r in receipts)
        assert all(r.fee_paid == 0 for r in receipts)
        assert chain.accounts.get(state) is None

    def test_deferred_bundle_still_lands_atomically(self):
        """End-to-end through submit_bundle under a tiny limit: whatever
        slot the bundle lands in, all members share it."""
        sim = Simulation(seed=21)
        chain = HostChain(sim, SimSigScheme(), HostConfig(block_tx_limit=2))
        chain.airdrop(PAYER, sol_to_lamports(1_000.0))
        program = CounterProgram()
        chain.deploy(program)
        state = Address.derive("counter-state")

        results = []
        for _ in range(6):
            chain.submit(make_tx(program, state))
        chain.submit_bundle(
            [make_tx(program, state) for _ in range(2)],
            tip_lamports=1_000, on_result=results.append,
        )
        sim.run_until(60.0)
        (receipts,) = results
        assert all(r.success for r in receipts)
        assert len({r.slot for r in receipts}) == 1


class CreatorProgram(Program):
    """Test program: touches (and thereby creates) its first account,
    then optionally fails — the rollback-phantom scenario."""

    def __init__(self):
        self._id = Address.derive("creator-program")

    @property
    def program_id(self) -> Address:
        return self._id

    def execute(self, ctx: InvokeContext, data: bytes) -> None:
        account = ctx.account(ctx.instruction_accounts[0])
        account.data = b"created!"
        if data == b"fail":
            raise ProgramError("told to fail after creating")


class TestRollbackRemovesPhantomAccounts:
    """A rolled-back transaction must not leave zero-lamport phantom
    accounts for addresses that did not exist before it ran."""

    @pytest.fixture
    def env(self):
        sim = Simulation(seed=5)
        chain = HostChain(sim, SimSigScheme(), HostConfig())
        chain.airdrop(PAYER, sol_to_lamports(1_000.0))
        program = CreatorProgram()
        chain.deploy(program)
        return sim, chain, program

    def test_failed_tx_leaves_no_phantom_account(self, env):
        sim, chain, program = env
        fresh = Address.derive("never-existed")
        assert chain.accounts.get(fresh) is None
        before = len(chain.accounts)

        results = []
        tx = Transaction(
            payer=PAYER,
            instructions=(Instruction(program.program_id, (fresh,), b"fail"),),
            fee_strategy=BaseFee(),
        )
        chain.submit(tx, on_result=results.append)
        sim.run_until(30.0)

        assert not results[0].success
        assert chain.accounts.get(fresh) is None, "phantom account left behind"
        assert len(chain.accounts) == before

    def test_successful_tx_keeps_created_account(self, env):
        sim, chain, program = env
        fresh = Address.derive("kept")
        tx = Transaction(
            payer=PAYER,
            instructions=(Instruction(program.program_id, (fresh,), b"ok"),),
            fee_strategy=BaseFee(),
        )
        results = []
        chain.submit(tx, on_result=results.append)
        sim.run_until(30.0)
        assert results[0].success
        assert chain.accounts.get(fresh) is not None
        assert bytes(chain.accounts.account(fresh).data) == b"created!"

    def test_failed_bundle_leaves_no_phantom_accounts(self, env):
        sim, chain, program = env
        fresh = Address.derive("bundle-fresh")
        txs = [
            Transaction(
                payer=PAYER,
                instructions=(Instruction(program.program_id, (fresh,), b"ok"),),
                fee_strategy=BaseFee(),
            ),
            Transaction(
                payer=PAYER,
                instructions=(Instruction(program.program_id, (fresh,), b"fail"),),
                fee_strategy=BaseFee(),
            ),
        ]
        results = []
        chain.submit_bundle(txs, tip_lamports=1_000, on_result=results.append)
        sim.run_until(30.0)
        (receipts,) = results
        assert not any(r.success for r in receipts)
        assert chain.accounts.get(fresh) is None

    def test_pre_existing_account_restored_not_removed(self, env):
        sim, chain, program = env
        existing = Address.derive("existing")
        chain.airdrop(existing, 123)

        tx = Transaction(
            payer=PAYER,
            instructions=(Instruction(program.program_id, (existing,), b"fail"),),
            fee_strategy=BaseFee(),
        )
        results = []
        chain.submit(tx, on_result=results.append)
        sim.run_until(30.0)
        assert not results[0].success
        account = chain.accounts.get(existing)
        assert account is not None
        assert account.lamports == 123
        assert bytes(account.data) == b""


class TestCongestionDeterminism:
    """The per-hour spike schedule must depend only on the seed, never
    on the order (or volume) of congestion_at queries."""

    HOURS = list(range(48))

    def _schedule(self, seed, query_order, perturb=False):
        sim = Simulation(seed=seed)
        chain = HostChain(sim, SimSigScheme(), HostConfig(spike_probability=0.3))
        flags = {}
        for hour in query_order:
            if perturb:
                # Interleave unrelated draws on the chain's shared fork
                # RNG, as a different workload would.
                chain._rng.random()
            flags[hour] = chain.congestion_at(hour * 3600.0 + 10.0) \
                == chain.config.spike_congestion
        return [flags[hour] for hour in self.HOURS]

    def test_query_order_does_not_change_spikes(self):
        ascending = self._schedule(77, self.HOURS)
        descending = self._schedule(77, list(reversed(self.HOURS)))
        assert ascending == descending

    def test_interleaved_rng_draws_do_not_change_spikes(self):
        plain = self._schedule(77, self.HOURS)
        perturbed = self._schedule(77, self.HOURS, perturb=True)
        assert plain == perturbed

    def test_schedule_varies_by_hour_and_seed(self):
        flags = self._schedule(77, self.HOURS)
        assert any(flags) and not all(flags)
        assert self._schedule(78, self.HOURS) != flags

    def test_same_hour_spike_flag_is_cached_and_stable(self):
        sim = Simulation(seed=3)
        chain = HostChain(sim, SimSigScheme(), HostConfig(spike_probability=1.0))
        # Every hour spikes: the level pins to spike_congestion all hour,
        # however often (and wherever in the hour) it is queried.
        for offset in (0.0, 100.0, 3599.0):
            level = chain.congestion_at(7 * 3600.0 + offset)
            assert level == chain.config.spike_congestion


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def run(seed):
            sim = Simulation(seed=seed)
            chain = HostChain(sim, SimSigScheme())
            chain.airdrop(PAYER, sol_to_lamports(100.0))
            program = CounterProgram()
            chain.deploy(program)
            state = Address.derive("counter-state")
            receipts = []
            for i in range(10):
                sim.schedule_at(i * 2.0, lambda: chain.submit(
                    make_tx(program, state), on_result=receipts.append,
                ))
            sim.run_until(60.0)
            return [(r.slot, r.fee_paid, r.success) for r in receipts]

        assert run(5) == run(5)
        assert run(5) != run(6) or True  # different seeds may coincide; no assertion
