"""Remaining negative paths of the IBC module: identifier management,
routing misdirection and proof-height discipline."""

import pytest

from repro.crypto.hashing import Hash
from repro.errors import ChannelError, ClientError, HandshakeError, PacketError
from repro.ibc.host import IbcApp, IbcHost
from repro.ibc.identifiers import ChannelId, ClientId, ConnectionId, PortId

from tests.helpers import StaticRootClient
from tests.test_ibc_core import Link


class TestClientManagement:
    def test_client_ids_sequence(self):
        host = IbcHost("seq-test")
        first = host.create_client(StaticRootClient())
        second = host.create_client(StaticRootClient())
        assert (str(first), str(second)) == ("client-0", "client-1")
        assert host.client(first) is not host.client(second)

    def test_unknown_client_rejected(self):
        host = IbcHost("seq-test")
        with pytest.raises(ClientError):
            host.client(ClientId("client-9"))
        with pytest.raises(ClientError):
            host.conn_open_init(ClientId("client-9"), ClientId("client-0"))

    def test_port_rebinding_rejected(self):
        host = IbcHost("seq-test")
        host.bind_port(PortId("transfer"), IbcApp())
        with pytest.raises(ChannelError):
            host.bind_port(PortId("transfer"), IbcApp())

    def test_unknown_connection_and_channel(self):
        host = IbcHost("seq-test")
        with pytest.raises(HandshakeError):
            host.connection(ConnectionId("connection-3"))
        with pytest.raises(ChannelError):
            host.channel(PortId("transfer"), ChannelId("channel-3"))


class TestRoutingMisdirection:
    @pytest.fixture
    def two_channels(self):
        """One link with two independent echo channels."""
        link = Link()
        link.open(port=link.echo_port)
        first = (link.chan_a, link.chan_b)
        link.open(port=link.echo_port)  # second channel over new conn
        second = (link.chan_a, link.chan_b)
        return link, first, second

    def test_packet_cannot_cross_channels(self, two_channels):
        """A packet sent on channel 1 cannot be delivered as if it came
        over channel 2 — the channel binding is part of routing checks."""
        import dataclasses
        from repro.ibc import commitment as paths
        link, (a1, b1), (a2, b2) = two_channels
        packet = link.a.send_packet(link.port, a1, b"routed", 0.0)
        height = link.sync()
        proof = link.a.store.prove_seq(
            paths.commitment_prefix(link.port, a1), packet.sequence,
        )
        rerouted = dataclasses.replace(packet, destination_channel=b2)
        with pytest.raises(PacketError, match="wrong channel"):
            link.b.recv_packet(rerouted, proof, height)
        # The correctly routed delivery still works afterwards.
        ack = link.b.recv_packet(packet, proof, height)
        assert ack.success

    def test_commitment_proof_not_transferable_between_channels(self, two_channels):
        """Even with matching routing fields, a proof for channel 1's
        commitment cannot authorise a channel-2 packet (distinct keys)."""
        import dataclasses
        from repro.ibc import commitment as paths
        link, (a1, b1), (a2, b2) = two_channels
        packet = link.a.send_packet(link.port, a1, b"original", 0.0)
        height = link.sync()
        proof = link.a.store.prove_seq(
            paths.commitment_prefix(link.port, a1), packet.sequence,
        )
        impostor = dataclasses.replace(
            packet, source_channel=a2, destination_channel=b2,
        )
        with pytest.raises(PacketError):
            link.b.recv_packet(impostor, proof, height)


class TestProofHeightDiscipline:
    def test_proof_against_other_height_rejected(self):
        """A proof valid at height H fails verification at height H+1 if
        the root moved (no silent acceptance of stale proofs)."""
        from repro.ibc import commitment as paths
        link = Link()
        link.open(port=link.echo_port)
        packet = link.a.send_packet(link.port, link.chan_a, b"x", 0.0)
        h1 = link.sync()
        proof = link.a.store.prove_seq(
            paths.commitment_prefix(link.port, link.chan_a), packet.sequence,
        )
        # Root moves between h1 and h2.
        link.a.store.set("drift", b"drift")
        h2 = link.sync()
        import dataclasses
        with pytest.raises(PacketError):
            link.b.recv_packet(packet, proof, h2)
        ack = link.b.recv_packet(packet, proof, h1)
        assert ack.success

    def test_untracked_height_rejected(self):
        from repro.ibc import commitment as paths
        link = Link()
        link.open(port=link.echo_port)
        packet = link.a.send_packet(link.port, link.chan_a, b"x", 0.0)
        link.sync()
        proof = link.a.store.prove_seq(
            paths.commitment_prefix(link.port, link.chan_a), packet.sequence,
        )
        with pytest.raises(PacketError):
            link.b.recv_packet(packet, proof, 10_000)  # never synced

    def test_ack_proof_height_discipline(self):
        from repro.ibc import commitment as paths
        link = Link()
        link.open(port=link.echo_port)
        packet = link.a.send_packet(link.port, link.chan_a, b"x", 0.0)
        h1 = link.sync()
        proof = link.a.store.prove_seq(
            paths.commitment_prefix(link.port, link.chan_a), packet.sequence,
        )
        ack = link.b.recv_packet(packet, proof, h1)
        ack_proof = link.b.store.prove_seq(
            paths.ack_prefix(link.port, link.chan_b), packet.sequence,
        )
        # The ack was written after h1; its proof only verifies at h2.
        with pytest.raises(PacketError):
            link.a.acknowledge_packet(packet, ack, ack_proof, h1)
        h2 = link.sync()
        link.a.acknowledge_packet(packet, ack, ack_proof, h2)

    def test_ack_for_unsent_packet_rejected(self):
        from repro.ibc import commitment as paths
        from repro.ibc.packet import Acknowledgement, Packet
        link = Link()
        link.open(port=link.echo_port)
        phantom = Packet(0, link.port, link.chan_a, link.port, link.chan_b,
                         b"phantom", 0.0)
        # Forge an ack on B's store without any commitment on A.
        link.b.store.set_seq(paths.ack_prefix(link.port, link.chan_b), 0,
                             Acknowledgement.ok().commitment())
        height = link.sync()
        ack_proof = link.b.store.prove_seq(
            paths.ack_prefix(link.port, link.chan_b), 0,
        )
        with pytest.raises(PacketError, match="no outstanding commitment"):
            link.a.acknowledge_packet(phantom, Acknowledgement.ok(), ack_proof, height)
