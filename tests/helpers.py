"""Shared test helpers."""

from __future__ import annotations

from typing import Optional

from repro.crypto.hashing import Hash
from repro.ibc.client import LightClient


class StaticRootClient(LightClient):
    """A light client whose consensus states are injected directly.

    Unit tests for the IBC handlers use it to decouple protocol logic
    from header verification (the real clients are tested separately).
    """

    def __init__(self) -> None:
        super().__init__()
        self._states: dict[int, tuple[Hash, float]] = {}

    def set_state(self, height: int, root: Hash, timestamp: float = 0.0) -> None:
        self._states[height] = (root, timestamp)

    def latest_height(self) -> int:
        return max(self._states, default=0)

    def consensus_root(self, height: int) -> Optional[Hash]:
        entry = self._states.get(height)
        return entry[0] if entry else None

    def consensus_timestamp(self, height: int) -> Optional[float]:
        entry = self._states.get(height)
        return entry[1] if entry else None


# ======================================================================
# Protocol-level multi-chain fabric (no simulation kernel)
# ======================================================================

from repro.fabric.forward import ForwardMiddleware  # noqa: E402
from repro.ibc import commitment as paths  # noqa: E402
from repro.ibc.apps.transfer import Bank, TransferApp  # noqa: E402
from repro.ibc.channel import ChannelOrder  # noqa: E402
from repro.ibc.host import IbcHost  # noqa: E402
from repro.ibc.identifiers import ChannelId, PortId  # noqa: E402


class ProtoChain:
    """One chain of a :class:`ProtoFabric`: an IbcHost, a bank, ICS-20,
    and (optionally) the forwarding middleware — everything needed to
    exercise multi-hop semantics without the event-loop stack."""

    def __init__(self, fabric: "ProtoFabric", name: str,
                 forwarding: bool = False,
                 hop_timeout_seconds: float = 600.0) -> None:
        self.fabric = fabric
        self.name = name
        self.host = IbcHost(name, seal_receipts=True)
        self.bank = Bank()
        self.port = PortId("transfer")
        self.app = TransferApp(self.bank, self.port)
        self.forward: Optional[ForwardMiddleware] = None
        if forwarding:
            self.forward = ForwardMiddleware(
                self.app, self._send_raw, lambda: fabric.now,
                hop_timeout_seconds,
            )
            self.host.bind_port(self.port, self.forward)
        else:
            self.host.bind_port(self.port, self.app)
        #: Committed packets awaiting relay (the fabric's pump drains it).
        self.outbox: list = []

    def _send_raw(self, port: str, channel: str, payload: bytes,
                  timeout_timestamp: float):
        packet = self.host.send_packet(PortId(port), ChannelId(channel),
                                       payload, timeout_timestamp)
        self.outbox.append(packet)
        return packet

    def send_transfer(self, channel: ChannelId, denom: str, amount: int,
                      sender: str, receiver: str,
                      timeout_timestamp: float = 0.0):
        payload = self.app.make_payload(channel, denom, amount,
                                        sender, receiver)
        return self._send_raw(str(self.port), str(channel), payload,
                              timeout_timestamp)


class ProtoFabric:
    """N IbcHosts linked pairwise through StaticRootClients.

    A shared logical clock (``now``) drives timeout semantics and the
    middleware's hop deadlines; ``sync()`` publishes every chain's
    current store root to every client at a fresh height, stamped with
    the clock.  ``pump()`` relays packets (and their acks) until the
    fabric is quiescent — the deterministic, instant stand-in for the
    full relayer stack.
    """

    def __init__(self) -> None:
        self.chains: dict[str, ProtoChain] = {}
        self.now = 0.0
        self.height = 0
        #: (holder chain, peer chain) -> client the holder runs of peer.
        self.clients: dict[tuple[str, str], StaticRootClient] = {}
        self.client_ids: dict[tuple[str, str], str] = {}
        #: (chain, channel str) -> peer chain name, for pump dispatch.
        self.channel_peer: dict[tuple[str, str], str] = {}
        #: (pair) -> this chain's channel to the peer.
        self.channels: dict[tuple[str, str], ChannelId] = {}

    def add_chain(self, name: str, forwarding: bool = False,
                  hop_timeout_seconds: float = 600.0) -> ProtoChain:
        chain = ProtoChain(self, name, forwarding, hop_timeout_seconds)
        self.chains[name] = chain
        return chain

    def sync(self) -> int:
        self.height += 1
        for (holder, peer), client in self.clients.items():
            client.set_state(self.height,
                             self.chains[peer].host.store.root_hash,
                             self.now)
        return self.height

    def link(self, a: str, b: str) -> tuple[ChannelId, ChannelId]:
        """Open a connection + transfer channel between two chains."""
        ca, cb = self.chains[a], self.chains[b]
        for holder, peer in ((a, b), (b, a)):
            client = StaticRootClient()
            self.clients[(holder, peer)] = client
            self.client_ids[(holder, peer)] = \
                self.chains[holder].host.create_client(client)
        conn_a = ca.host.conn_open_init(self.client_ids[(a, b)],
                                        self.client_ids[(b, a)])
        h = self.sync()
        proof = ca.host.store.prove(paths.connection_path(conn_a))
        conn_b = cb.host.conn_open_try(self.client_ids[(b, a)],
                                      self.client_ids[(a, b)],
                                      conn_a, proof, h)
        h = self.sync()
        proof = cb.host.store.prove(paths.connection_path(conn_b))
        ca.host.conn_open_ack(conn_a, conn_b, proof, h)
        h = self.sync()
        proof = ca.host.store.prove(paths.connection_path(conn_a))
        cb.host.conn_open_confirm(conn_b, proof, h)

        order = ChannelOrder.UNORDERED
        chan_a = ca.host.chan_open_init(ca.port, conn_a, cb.port, order)
        h = self.sync()
        proof = ca.host.store.prove(paths.channel_path(ca.port, chan_a))
        chan_b = cb.host.chan_open_try(cb.port, conn_b, ca.port, chan_a,
                                       order, proof, h)
        h = self.sync()
        proof = cb.host.store.prove(paths.channel_path(cb.port, chan_b))
        ca.host.chan_open_ack(ca.port, chan_a, chan_b, proof, h)
        h = self.sync()
        proof = ca.host.store.prove(paths.channel_path(ca.port, chan_a))
        cb.host.chan_open_confirm(cb.port, chan_b, proof, h)

        self.channels[(a, b)] = chan_a
        self.channels[(b, a)] = chan_b
        self.channel_peer[(a, str(chan_a))] = b
        self.channel_peer[(b, str(chan_b))] = a
        return chan_a, chan_b

    # ------------------------------------------------------------------
    # Relaying
    # ------------------------------------------------------------------

    def deliver(self, src: ProtoChain, packet) -> None:
        """Relay one packet and immediately return its ack."""
        dst = self.chains[self.channel_peer[(src.name,
                                             str(packet.source_channel))]]
        h = self.sync()
        proof = src.host.store.prove_seq(
            paths.commitment_prefix(packet.source_port,
                                    packet.source_channel),
            packet.sequence,
        )
        ack = dst.host.recv_packet(packet, proof, h, local_time=self.now)
        h = self.sync()
        ack_proof = dst.host.store.prove_seq(
            paths.ack_prefix(packet.destination_port,
                             packet.destination_channel),
            packet.sequence,
        )
        src.host.acknowledge_packet(packet, ack, ack_proof, h)

    def expire(self, src: ProtoChain, packet) -> None:
        """Time a packet out on its source (proves non-receipt)."""
        dst = self.chains[self.channel_peer[(src.name,
                                             str(packet.source_channel))]]
        h = self.sync()
        absence = dst.host.store.prove_seq_absence(
            paths.receipt_prefix(packet.destination_port,
                                 packet.destination_channel),
            packet.sequence,
        )
        src.host.timeout_packet(packet, absence, h)

    def pump(self, max_rounds: int = 64,
             drop=None) -> int:
        """Relay until quiescent.  ``drop(chain, packet)`` — when it
        returns True the packet is left committed but never delivered
        (the caller times it out later via :meth:`expire`).  Returns the
        number of packets delivered."""
        delivered = 0
        for _ in range(max_rounds):
            batch = []
            for chain in self.chains.values():
                while chain.outbox:
                    batch.append((chain, chain.outbox.pop(0)))
            if not batch:
                return delivered
            for src, packet in batch:
                if drop is not None and drop(src, packet):
                    continue
                self.deliver(src, packet)
                delivered += 1
        raise AssertionError(f"fabric still busy after {max_rounds} rounds")
