"""Unit tests for the IBC core: packets, handshakes, packet lifecycle.

Two IbcHosts are wired back-to-back through StaticRootClient instances
whose consensus states the test refreshes from the peers' live store
roots — isolating protocol logic from header verification.
"""

import pytest

from repro.errors import (
    ChannelError,
    DoubleDeliveryError,
    HandshakeError,
    IbcError,
    PacketError,
    TimeoutError_,
)
from repro.ibc import commitment as paths
from repro.ibc.apps.transfer import Bank, FungibleTokenPacketData, TransferApp
from repro.ibc.channel import ChannelOrder, ChannelState
from repro.ibc.connection import ConnectionEnd, ConnectionState
from repro.ibc.host import IbcHost
from repro.ibc.identifiers import ChannelId, ClientId, ConnectionId, PortId
from repro.ibc.packet import Acknowledgement, Packet

from tests.helpers import StaticRootClient


class Link:
    """Two chains (A = guest-like with sealing, B = plain) linked for
    tests; `sync()` refreshes each side's view of the other's root."""

    def __init__(self, seal_receipts_a=True):
        self.a = IbcHost("chain-a", seal_receipts=seal_receipts_a)
        self.b = IbcHost("chain-b")
        self.client_ab = StaticRootClient()  # hosted on A, tracks B
        self.client_ba = StaticRootClient()  # hosted on B, tracks A
        self.a_client_id = self.a.create_client(self.client_ab)
        self.b_client_id = self.b.create_client(self.client_ba)
        self.height = 0
        self.port = PortId("transfer")
        self.bank_a, self.bank_b = Bank(), Bank()
        self.app_a = TransferApp(self.bank_a, self.port)
        self.app_b = TransferApp(self.bank_b, self.port)
        self.a.bind_port(self.port, self.app_a)
        self.b.bind_port(self.port, self.app_b)
        # A second port with a trivial always-ok app, for protocol-level
        # tests whose payloads are not ICS-20 structures.
        from repro.ibc.host import IbcApp
        self.echo_port = PortId("echo-app")
        self.a.bind_port(self.echo_port, IbcApp())
        self.b.bind_port(self.echo_port, IbcApp())

    def sync(self, timestamp: float = 0.0) -> int:
        """Commit a "block" on both chains: publish current roots."""
        self.height += 1
        self.client_ab.set_state(self.height, self.b.store.root_hash, timestamp)
        self.client_ba.set_state(self.height, self.a.store.root_hash, timestamp)
        return self.height

    def open(self, order=ChannelOrder.UNORDERED, port=None):
        """Run both full handshakes, proof-checked at every step."""
        self.port = port or self.port
        conn_a = self.a.conn_open_init(self.a_client_id, self.b_client_id)
        h = self.sync()
        proof = self.a.store.prove(paths.connection_path(conn_a))
        conn_b = self.b.conn_open_try(self.b_client_id, self.a_client_id, conn_a, proof, h)
        h = self.sync()
        proof = self.b.store.prove(paths.connection_path(conn_b))
        self.a.conn_open_ack(conn_a, conn_b, proof, h)
        h = self.sync()
        proof = self.a.store.prove(paths.connection_path(conn_a))
        self.b.conn_open_confirm(conn_b, proof, h)

        chan_a = self.a.chan_open_init(self.port, conn_a, self.port, order)
        h = self.sync()
        proof = self.a.store.prove(paths.channel_path(self.port, chan_a))
        chan_b = self.b.chan_open_try(self.port, conn_b, self.port, chan_a, order, proof, h)
        h = self.sync()
        proof = self.b.store.prove(paths.channel_path(self.port, chan_b))
        self.a.chan_open_ack(self.port, chan_a, chan_b, proof, h)
        h = self.sync()
        proof = self.a.store.prove(paths.channel_path(self.port, chan_a))
        self.b.chan_open_confirm(self.port, chan_b, proof, h)
        self.conn_a, self.conn_b = conn_a, conn_b
        self.chan_a, self.chan_b = chan_a, chan_b
        return chan_a, chan_b


@pytest.fixture
def link():
    lk = Link()
    lk.open()
    return lk


class TestPacketTypes:
    def test_packet_roundtrip(self):
        packet = Packet(3, PortId("transfer"), ChannelId("channel-0"),
                        PortId("transfer"), ChannelId("channel-1"),
                        b"payload", 1234.5)
        assert Packet.from_bytes(packet.to_bytes()) == packet

    def test_commitment_binds_fields(self):
        base = Packet(3, PortId("transfer"), ChannelId("channel-0"),
                      PortId("transfer"), ChannelId("channel-1"), b"x", 0.0)
        import dataclasses
        tweaks = [
            dataclasses.replace(base, sequence=4),
            dataclasses.replace(base, payload=b"y"),
            dataclasses.replace(base, timeout_timestamp=1.0),
            dataclasses.replace(base, destination_channel=ChannelId("channel-9")),
        ]
        assert base.commitment() not in {t.commitment() for t in tweaks}

    def test_ack_roundtrip(self):
        ok = Acknowledgement.ok(b"result")
        err = Acknowledgement.error("nope")
        assert Acknowledgement.from_bytes(ok.to_bytes()) == ok
        assert Acknowledgement.from_bytes(err.to_bytes()) == err
        assert ok.commitment() != err.commitment()

    def test_bad_identifier_rejected(self):
        with pytest.raises(IbcError):
            ChannelId("UPPER")
        with pytest.raises(IbcError):
            PortId("x")  # too short


class TestHandshakes:
    def test_full_handshake_opens_both_ends(self, link):
        assert link.a.connection(link.conn_a).state == ConnectionState.OPEN
        assert link.b.connection(link.conn_b).state == ConnectionState.OPEN
        assert link.a.channel(link.port, link.chan_a).state == ChannelState.OPEN
        assert link.b.channel(link.port, link.chan_b).state == ChannelState.OPEN

    def test_try_with_wrong_proof_rejected(self):
        lk = Link()
        conn_a = lk.a.conn_open_init(lk.a_client_id, lk.b_client_id)
        h = lk.sync()
        # Proof of a different path entirely.
        lk.a.store.set("decoy", b"value")
        proof = lk.a.store.prove("decoy")
        with pytest.raises(HandshakeError):
            lk.b.conn_open_try(lk.b_client_id, lk.a_client_id, conn_a, proof, h)

    def test_try_against_stale_height_rejected(self):
        lk = Link()
        conn_a = lk.a.conn_open_init(lk.a_client_id, lk.b_client_id)
        proof = lk.a.store.prove(paths.connection_path(conn_a))
        with pytest.raises(HandshakeError):
            # Height 99 was never synced: no consensus root there.
            lk.b.conn_open_try(lk.b_client_id, lk.a_client_id, conn_a, proof, 99)

    def test_ack_out_of_order_rejected(self, link):
        with pytest.raises(HandshakeError):
            link.a.conn_open_ack(link.conn_a, link.conn_b,
                                 link.b.store.prove(paths.connection_path(link.conn_b)),
                                 link.sync())

    def test_channel_requires_open_connection(self):
        lk = Link()
        conn = lk.a.conn_open_init(lk.a_client_id, lk.b_client_id)
        with pytest.raises(HandshakeError):
            lk.a.chan_open_init(lk.port, conn, lk.port)

    def test_channel_requires_bound_port(self, link):
        with pytest.raises(ChannelError):
            link.a.chan_open_init(PortId("unbound"), link.conn_a, link.port)

    def test_connection_end_serialization(self):
        end = ConnectionEnd(ConnectionState.TRYOPEN, ClientId("client-0"),
                            ClientId("client-5"), ConnectionId("connection-2"))
        assert ConnectionEnd.from_bytes(end.to_bytes()) == end


@pytest.fixture
def echo_link():
    lk = Link()
    lk.open(port=lk.echo_port)
    return lk


class TestPacketLifecycle:
    def send_a_to_b(self, link, payload=b"hello", timeout=0.0):
        packet = link.a.send_packet(link.port, link.chan_a, payload, timeout)
        height = link.sync()
        proof = link.a.store.prove_seq(
            paths.commitment_prefix(link.port, link.chan_a), packet.sequence,
        )
        return packet, proof, height

    def test_send_recv_ack_roundtrip(self, echo_link):
        packet, proof, height = self.send_a_to_b(echo_link)
        ack = echo_link.b.recv_packet(packet, proof, height)
        assert ack.success
        height = echo_link.sync()
        ack_proof = echo_link.b.store.prove_seq(
            paths.ack_prefix(echo_link.port, echo_link.chan_b), packet.sequence,
        )
        echo_link.a.acknowledge_packet(packet, ack, ack_proof, height)
        assert echo_link.a.counters.packets_acknowledged == 1
        # Commitment cleared (bounded sender state).
        assert not echo_link.a.store.contains_seq(
            paths.commitment_prefix(echo_link.port, echo_link.chan_a), packet.sequence,
        )

    def test_double_delivery_rejected_via_sealed_receipt(self, echo_link):
        """The paper's §III-A mechanism: the sealed receipt stub is what
        rejects the replay."""
        packet, proof, height = self.send_a_to_b(echo_link)
        echo_link.b.recv_packet(packet, proof, height)
        with pytest.raises(DoubleDeliveryError):
            echo_link.b.recv_packet(packet, proof, height)
        assert echo_link.b.counters.double_deliveries_rejected == 1

    def test_recv_with_forged_payload_rejected(self, echo_link):
        packet, proof, height = self.send_a_to_b(echo_link)
        import dataclasses
        forged = dataclasses.replace(packet, payload=b"evil")
        with pytest.raises(PacketError):
            echo_link.b.recv_packet(forged, proof, height)

    def test_recv_unsent_packet_rejected(self, echo_link):
        packet = Packet(99, echo_link.port, echo_link.chan_a, echo_link.port, echo_link.chan_b, b"x", 0.0)
        height = echo_link.sync()
        # No commitment exists; prove a decoy and try to pass it off.
        echo_link.a.store.set("decoy", b"v")
        proof = echo_link.a.store.prove("decoy")
        with pytest.raises(PacketError):
            echo_link.b.recv_packet(packet, proof, height)

    def test_expired_packet_not_deliverable(self, echo_link):
        packet, proof, height = self.send_a_to_b(echo_link, timeout=10.0)
        with pytest.raises(TimeoutError_):
            echo_link.b.recv_packet(packet, proof, height, local_time=11.0)

    def test_timeout_flow(self, echo_link):
        packet, _, _ = self.send_a_to_b(echo_link, timeout=10.0)
        height = echo_link.sync(timestamp=20.0)  # B's clock passed the timeout
        absence = echo_link.b.store.prove_seq_absence(
            paths.receipt_prefix(echo_link.port, echo_link.chan_b), packet.sequence,
        )
        echo_link.a.timeout_packet(packet, absence, height)
        assert echo_link.a.counters.packets_timed_out == 1
        assert not echo_link.a.store.contains_seq(
            paths.commitment_prefix(echo_link.port, echo_link.chan_a), packet.sequence,
        )

    def test_timeout_before_expiry_rejected(self, echo_link):
        packet, _, _ = self.send_a_to_b(echo_link, timeout=100.0)
        height = echo_link.sync(timestamp=20.0)
        absence = echo_link.b.store.prove_seq_absence(
            paths.receipt_prefix(echo_link.port, echo_link.chan_b), packet.sequence,
        )
        with pytest.raises(TimeoutError_):
            echo_link.a.timeout_packet(packet, absence, height)

    def test_timeout_of_delivered_packet_impossible(self, echo_link):
        """Safety: a delivered packet cannot also time out (the receipt
        exists, so no absence proof can be made)."""
        packet, proof, height = self.send_a_to_b(echo_link, timeout=1000.0)
        echo_link.b.recv_packet(packet, proof, height)
        from repro.errors import TrieError
        with pytest.raises(TrieError):
            echo_link.b.store.prove_seq_absence(
                paths.receipt_prefix(echo_link.port, echo_link.chan_b), packet.sequence,
            )

    def test_sequences_increment(self, echo_link):
        p0 = echo_link.a.send_packet(echo_link.port, echo_link.chan_a, b"0", 0.0)
        p1 = echo_link.a.send_packet(echo_link.port, echo_link.chan_a, b"1", 0.0)
        assert (p0.sequence, p1.sequence) == (0, 1)

    def test_ordered_channel_enforces_order(self):
        lk = Link()
        lk.open(order=ChannelOrder.ORDERED)
        p0 = lk.a.send_packet(lk.port, lk.chan_a, b"0", 0.0)
        p1 = lk.a.send_packet(lk.port, lk.chan_a, b"1", 0.0)
        h = lk.sync()
        prefix = paths.commitment_prefix(lk.port, lk.chan_a)
        proof1 = lk.a.store.prove_seq(prefix, 1)
        with pytest.raises(PacketError):
            lk.b.recv_packet(p1, proof1, h)
        proof0 = lk.a.store.prove_seq(prefix, 0)
        lk.b.recv_packet(p0, proof0, h)
        lk.b.recv_packet(p1, proof1, h)

    def test_ack_with_wrong_content_rejected(self, echo_link):
        packet, proof, height = self.send_a_to_b(echo_link)
        ack = echo_link.b.recv_packet(packet, proof, height)
        height = echo_link.sync()
        ack_proof = echo_link.b.store.prove_seq(
            paths.ack_prefix(echo_link.port, echo_link.chan_b), packet.sequence,
        )
        forged = Acknowledgement.error("forged failure")
        with pytest.raises(PacketError):
            echo_link.a.acknowledge_packet(packet, forged, ack_proof, height)
        echo_link.a.acknowledge_packet(packet, ack, ack_proof, height)

    def test_confirm_ack_seals_entry(self, echo_link):
        """Confirmed acks are sealed under the lagged rule: ack m seals
        once acks up to m+1 exist (see _SequenceTracker)."""
        packets = []
        for i in range(3):
            # B sends; A — the sealing (guest-like) side — receives.
            packet = echo_link.b.send_packet(echo_link.port, echo_link.chan_b, bytes([i]), 0.0)
            height = echo_link.sync()
            proof = echo_link.b.store.prove_seq(
                paths.commitment_prefix(echo_link.port, echo_link.chan_b), packet.sequence,
            )
            echo_link.a.recv_packet(packet, proof, height)
            packets.append(packet)
        for packet in packets:
            echo_link.a.confirm_ack(echo_link.port, echo_link.chan_a, packet.sequence)
        from repro.errors import SealedNodeError
        ack_prefix = paths.ack_prefix(echo_link.port, echo_link.chan_a)
        with pytest.raises(SealedNodeError):
            echo_link.a.store.get_seq(ack_prefix, 0)
        # The newest ack stays unsealed until a later one lands (it must
        # remain provable and its leaf still covers future sequences).
        assert echo_link.a.store.contains_seq(ack_prefix, 2)

    def test_lagged_receipt_sealing_allows_out_of_order_delivery(self):
        """The correctness reason for lagged sealing: an unordered
        channel can deliver sequence 2 before 1; sealing receipt 2's
        leaf eagerly would have made receipt 1 unwritable."""
        lk = Link()
        lk.open(port=lk.echo_port)
        # B sends; A (the sealing, guest-like side) receives out of order.
        packets = [lk.b.send_packet(lk.port, lk.chan_b, bytes([i]), 0.0) for i in range(4)]
        height = lk.sync()
        prefix = paths.commitment_prefix(lk.port, lk.chan_b)
        order = [0, 2, 1, 3]
        for i in order:
            proof = lk.b.store.prove_seq(prefix, i)
            lk.a.recv_packet(packets[i], proof, height)
        from repro.errors import SealedNodeError
        receipt_prefix = paths.receipt_prefix(lk.port, lk.chan_a)
        # Everything below watermark-1 got sealed; replay still fails for
        # every delivered sequence, sealed or not.
        with pytest.raises(SealedNodeError):
            lk.a.store.get_seq(receipt_prefix, 0)
        for i in range(4):
            proof = lk.b.store.prove_seq(prefix, i)
            with pytest.raises(DoubleDeliveryError):
                lk.a.recv_packet(packets[i], proof, height)

    def test_frozen_client_blocks_recv(self, echo_link):
        """§VI-C's mitigation: a frozen client stops all deliveries."""
        from repro.errors import ClientError
        packet, proof, height = self.send_a_to_b(echo_link)
        echo_link.client_ba.freeze()
        with pytest.raises(ClientError):
            echo_link.b.recv_packet(packet, proof, height)


class TestTransferApp:
    def test_native_escrow_and_voucher_mint(self, link):
        link.bank_a.mint("alice", "GUEST", 500)
        payload = link.app_a.make_payload(link.chan_a, "GUEST", 200, "alice", "bob")
        packet = link.a.send_packet(link.port, link.chan_a, payload, 0.0)
        height = link.sync()
        proof = link.a.store.prove_seq(
            paths.commitment_prefix(link.port, link.chan_a), packet.sequence,
        )
        ack = link.b.recv_packet(packet, proof, height)
        assert ack.success
        voucher = link.app_b.voucher_denom(link.chan_b, "GUEST")
        assert link.bank_b.balance("bob", voucher) == 200
        assert link.bank_a.balance("alice", "GUEST") == 300
        assert link.bank_a.balance(link.app_a.escrow_address(link.chan_a), "GUEST") == 200

    def test_voucher_returns_home(self, link):
        self.test_native_escrow_and_voucher_mint(link)
        voucher = link.app_b.voucher_denom(link.chan_b, "GUEST")
        payload = link.app_b.make_payload(link.chan_b, voucher, 150, "bob", "carol")
        packet = link.b.send_packet(link.port, link.chan_b, payload, 0.0)
        height = link.sync()
        proof = link.b.store.prove_seq(
            paths.commitment_prefix(link.port, link.chan_b), packet.sequence,
        )
        ack = link.a.recv_packet(packet, proof, height)
        assert ack.success
        assert link.bank_a.balance("carol", "GUEST") == 150
        assert link.bank_b.balance("bob", voucher) == 50
        # Supply invariant: escrow shrank by what came home.
        assert link.bank_a.balance(link.app_a.escrow_address(link.chan_a), "GUEST") == 50

    def test_timeout_refunds_escrow(self, link):
        link.bank_a.mint("alice", "GUEST", 500)
        payload = link.app_a.make_payload(link.chan_a, "GUEST", 200, "alice", "bob")
        packet = link.a.send_packet(link.port, link.chan_a, payload, timeout_timestamp=10.0)
        height = link.sync(timestamp=20.0)
        absence = link.b.store.prove_seq_absence(
            paths.receipt_prefix(link.port, link.chan_b), packet.sequence,
        )
        link.a.timeout_packet(packet, absence, height)
        assert link.bank_a.balance("alice", "GUEST") == 500

    def test_failed_recv_acks_error_and_refunds(self, link):
        """A malformed payload produces an error ack; on return it
        refunds the sender."""
        link.bank_a.mint("alice", "GUEST", 500)
        payload = link.app_a.make_payload(link.chan_a, "GUEST", 200, "alice", "bob")
        packet = link.a.send_packet(link.port, link.chan_a, payload + b"corrupt", 0.0)
        # Manually corrupting after commitment means recv rejects the
        # packet outright (commitment mismatch) — so instead test the
        # app-level failure path directly:
        bad = Packet(5, link.port, link.chan_a, link.port, link.chan_b, b"\xff", 0.0)
        ack = link.app_b.on_recv(bad)
        assert not ack.success

    def test_refund_after_error_ack(self, link):
        link.bank_a.mint("alice", "GUEST", 500)
        payload = link.app_a.make_payload(link.chan_a, "GUEST", 200, "alice", "bob")
        packet = link.a.send_packet(link.port, link.chan_a, payload, 0.0)
        link.app_a.on_acknowledge(packet, Acknowledgement.error("rejected"))
        assert link.bank_a.balance("alice", "GUEST") == 500

    def test_transfer_amount_must_be_positive(self, link):
        with pytest.raises(IbcError):
            link.app_a.make_payload(link.chan_a, "GUEST", 0, "alice", "bob")

    def test_payload_codec(self):
        data = FungibleTokenPacketData("transfer/channel-0/uatom", 42, "a", "b")
        assert FungibleTokenPacketData.from_bytes(data.to_bytes()) == data


class TestChannelClose:
    def test_close_handshake(self, link):
        """Init on A, proof-checked confirm on B (ICS-04)."""
        from repro.ibc.channel import ChannelState
        link.a.chan_close_init(link.port, link.chan_a)
        assert link.a.channel(link.port, link.chan_a).state == ChannelState.CLOSED
        height = link.sync()
        proof = link.a.store.prove(paths.channel_path(link.port, link.chan_a))
        link.b.chan_close_confirm(link.port, link.chan_b, proof, height)
        assert link.b.channel(link.port, link.chan_b).state == ChannelState.CLOSED

    def test_closed_channel_rejects_new_sends(self, link):
        link.a.chan_close_init(link.port, link.chan_a)
        with pytest.raises(ChannelError):
            link.a.send_packet(link.port, link.chan_a, b"late", 0.0)

    def test_close_confirm_requires_proof_of_closure(self, link):
        height = link.sync()
        # A has NOT closed; B cannot confirm with a proof of the open end.
        proof = link.a.store.prove(paths.channel_path(link.port, link.chan_a))
        with pytest.raises(HandshakeError):
            link.b.chan_close_confirm(link.port, link.chan_b, proof, height)

    def test_inflight_ack_settles_after_close(self, echo_link):
        """Closing stops new traffic; in-flight packets still settle."""
        packet = echo_link.a.send_packet(echo_link.port, echo_link.chan_a, b"x", 0.0)
        height = echo_link.sync()
        proof = echo_link.a.store.prove_seq(
            paths.commitment_prefix(echo_link.port, echo_link.chan_a), packet.sequence,
        )
        ack = echo_link.b.recv_packet(packet, proof, height)
        echo_link.a.chan_close_init(echo_link.port, echo_link.chan_a)
        height = echo_link.sync()
        ack_proof = echo_link.b.store.prove_seq(
            paths.ack_prefix(echo_link.port, echo_link.chan_b), packet.sequence,
        )
        echo_link.a.acknowledge_packet(packet, ack, ack_proof, height)
        assert echo_link.a.counters.packets_acknowledged == 1

    def test_inflight_timeout_settles_after_close(self, echo_link):
        packet = echo_link.a.send_packet(echo_link.port, echo_link.chan_a, b"x",
                                         timeout_timestamp=10.0)
        echo_link.a.chan_close_init(echo_link.port, echo_link.chan_a)
        height = echo_link.sync(timestamp=20.0)
        absence = echo_link.b.store.prove_seq_absence(
            paths.receipt_prefix(echo_link.port, echo_link.chan_b), packet.sequence,
        )
        echo_link.a.timeout_packet(packet, absence, height)
        assert echo_link.a.counters.packets_timed_out == 1

    def test_double_close_rejected(self, link):
        link.a.chan_close_init(link.port, link.chan_a)
        with pytest.raises(ChannelError):
            link.a.chan_close_init(link.port, link.chan_a)
