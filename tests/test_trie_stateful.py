"""Model-based stateful fuzzing of the sealable trie.

A hypothesis RuleBasedStateMachine drives interleaved set / delete /
seal operations against both the trie and a reference dict model, while
checking the §III-A invariants at every step:

* the trie agrees with the model on every live key;
* sealed keys always raise SealedNodeError and can never be rewritten;
* sealing never changes the root commitment;
* membership proofs for live keys verify; deleted keys prove absent;
* the root is a function of the live+sealed content only.

Sealing follows the documented safe discipline (monotone sequenced keys,
sealed only behind the contiguous watermark), as the Guest Contract
uses it.
"""

import hashlib

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import KeyNotFoundError, SealedNodeError
from repro.trie import SealableTrie, verify_membership, verify_non_membership

_PREFIX = hashlib.sha256(b"stateful-channel").digest()[:24]


def seq_to_key(sequence: int) -> bytes:
    return _PREFIX + sequence.to_bytes(8, "big")


class TrieMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.trie = SealableTrie()
        self.model: dict[int, bytes] = {}     # live sequence -> value
        self.sealed: set[int] = set()
        self.next_seq = 0

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @rule(value=st.binary(min_size=1, max_size=16))
    def insert_next(self, value):
        """Append the next sequenced entry (how receipts arrive)."""
        self.trie.set(seq_to_key(self.next_seq), value)
        self.model[self.next_seq] = value
        self.next_seq += 1

    @rule(value=st.binary(min_size=1, max_size=16), data=st.data())
    @precondition(lambda self: self.model)
    def update_existing(self, value, data):
        seq = data.draw(st.sampled_from(sorted(self.model)))
        self.trie.set(seq_to_key(seq), value)
        self.model[seq] = value

    @rule(data=st.data())
    @precondition(lambda self: self.model)
    def delete_existing(self, data):
        seq = data.draw(st.sampled_from(sorted(self.model)))
        self.trie.delete(seq_to_key(seq))
        del self.model[seq]

    @rule(data=st.data())
    @precondition(lambda self: any(self._sealable()))
    def seal_safe(self, data):
        """Seal an entry behind the contiguous watermark (the safe rule)."""
        seq = data.draw(st.sampled_from(self._sealable()))
        root_before = self.trie.root_hash
        self.trie.seal(seq_to_key(seq))
        assert self.trie.root_hash == root_before  # sealing is root-neutral
        self.sealed.add(seq)
        del self.model[seq]

    def _sealable(self) -> list[int]:
        """Sequences with both neighbours present/sealed below watermark:
        every j <= seq+1 exists (live or sealed) — the lagged rule."""
        present = set(self.model) | self.sealed
        out = []
        for seq in self.model:
            if all(j in present for j in range(0, seq + 2)):
                out.append(seq)
        return out

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def live_keys_agree_with_model(self):
        for seq, value in self.model.items():
            assert self.trie.get(seq_to_key(seq)) == value

    @invariant()
    def sealed_keys_inaccessible(self):
        for seq in self.sealed:
            try:
                self.trie.get(seq_to_key(seq))
                raise AssertionError(f"sealed sequence {seq} is readable")
            except SealedNodeError:
                pass

    @invariant()
    def live_proofs_verify(self):
        root = self.trie.root_hash
        for seq in list(self.model)[:5]:  # sample to keep runs fast
            proof = self.trie.prove(seq_to_key(seq))
            assert verify_membership(root, proof)

    @invariant()
    def future_key_provably_absent(self):
        probe = seq_to_key(self.next_seq + 10)
        try:
            proof = self.trie.prove_absence(probe)
        except SealedNodeError:
            raise AssertionError("future sequence blocked by a sealed node")
        assert verify_non_membership(self.trie.root_hash, proof)

    @invariant()
    def deterministic_root(self):
        # Rebuild a trie from the live model plus replayed sealing and
        # compare: the root commits to content, not history...  only
        # checkable cheaply when nothing was sealed (sealed subtree
        # shapes depend on the insertion order of vanished entries).
        if self.sealed:
            return
        rebuilt = SealableTrie()
        for seq, value in self.model.items():
            rebuilt.set(seq_to_key(seq), value)
        assert rebuilt.root_hash == self.trie.root_hash


TestTrieStateMachine = TrieMachine.TestCase
TestTrieStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None,
)


class TestSealedReinsertIsImpossible:
    def test_reinsert_after_seal(self):
        trie = SealableTrie()
        for seq in range(3):
            trie.set(seq_to_key(seq), b"v")
        trie.seal(seq_to_key(0))
        import pytest
        with pytest.raises(SealedNodeError):
            trie.set(seq_to_key(0), b"resurrect")

    def test_delete_after_seal(self):
        trie = SealableTrie()
        for seq in range(3):
            trie.set(seq_to_key(seq), b"v")
        trie.seal(seq_to_key(0))
        import pytest
        with pytest.raises(SealedNodeError):
            trie.delete(seq_to_key(0))
