"""Unit tests for the handshake codec, commitment paths and the
provable store's sequenced-key scheme."""

import pytest

from repro.crypto.hashing import Hash
from repro.errors import SealedNodeError, TrieError
from repro.ibc import commitment as paths
from repro.ibc import messages as msgs
from repro.ibc.channel import ChannelOrder
from repro.ibc.identifiers import ChannelId, ClientId, ConnectionId, PortId
from repro.trie.store import (
    ProvableStore,
    path_key,
    seq_key,
    verify_path_absence,
    verify_path_membership,
)


class TestHandshakeCodec:
    def roundtrip(self, msg):
        decoded = msgs.decode_handshake(msgs.encode_handshake(msg))
        assert decoded == msg

    def make_proof(self):
        store = ProvableStore()
        store.set("some/path", b"value")
        return store.prove("some/path")

    def test_conn_open_init(self):
        self.roundtrip(msgs.MsgConnOpenInit(
            client_id=ClientId("client-0"),
            counterparty_client_id=ClientId("client-1"),
        ))

    def test_conn_open_try(self):
        self.roundtrip(msgs.MsgConnOpenTry(
            client_id=ClientId("client-0"),
            counterparty_client_id=ClientId("client-1"),
            counterparty_connection_id=ConnectionId("connection-3"),
            proof=self.make_proof(), proof_height=44,
        ))

    def test_conn_open_ack_and_confirm(self):
        self.roundtrip(msgs.MsgConnOpenAck(
            connection_id=ConnectionId("connection-0"),
            counterparty_connection_id=ConnectionId("connection-1"),
            proof=self.make_proof(), proof_height=2,
        ))
        self.roundtrip(msgs.MsgConnOpenConfirm(
            connection_id=ConnectionId("connection-0"),
            proof=self.make_proof(), proof_height=3,
        ))

    def test_channel_messages(self):
        self.roundtrip(msgs.MsgChanOpenInit(
            port_id=PortId("transfer"), connection_id=ConnectionId("connection-0"),
            counterparty_port_id=PortId("transfer"), order=ChannelOrder.ORDERED,
        ))
        self.roundtrip(msgs.MsgChanOpenTry(
            port_id=PortId("transfer"), connection_id=ConnectionId("connection-0"),
            counterparty_port_id=PortId("transfer"),
            counterparty_channel_id=ChannelId("channel-7"),
            order=ChannelOrder.UNORDERED,
            proof=self.make_proof(), proof_height=9,
        ))
        self.roundtrip(msgs.MsgChanOpenAck(
            port_id=PortId("transfer"), channel_id=ChannelId("channel-0"),
            counterparty_channel_id=ChannelId("channel-7"),
            proof=self.make_proof(), proof_height=10,
        ))
        self.roundtrip(msgs.MsgChanOpenConfirm(
            port_id=PortId("transfer"), channel_id=ChannelId("channel-0"),
            proof=self.make_proof(), proof_height=11,
        ))

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            msgs.decode_handshake(b"\x63somethingelse")


class TestCommitmentPaths:
    def test_paths_are_distinct(self):
        port, chan = PortId("transfer"), ChannelId("channel-0")
        values = {
            paths.client_state_path(ClientId("client-0")),
            paths.consensus_state_path(ClientId("client-0"), 5),
            paths.connection_path(ConnectionId("connection-0")),
            paths.channel_path(port, chan),
            paths.commitment_prefix(port, chan),
            paths.receipt_prefix(port, chan),
            paths.ack_prefix(port, chan),
        }
        assert len(values) == 7

    def test_channel_separation(self):
        port = PortId("transfer")
        a = paths.commitment_prefix(port, ChannelId("channel-0"))
        b = paths.commitment_prefix(port, ChannelId("channel-1"))
        assert a != b
        assert seq_key(a, 0) != seq_key(b, 0)


class TestSequencedKeys:
    def test_shared_prefix(self):
        a = seq_key("receipts/x", 0)
        b = seq_key("receipts/x", 1)
        assert a[:24] == b[:24]
        assert a != b

    def test_big_endian_ordering(self):
        keys = [seq_key("p/x", n) for n in (0, 1, 255, 256, 2**32)]
        assert keys == sorted(keys)

    def test_range_validated(self):
        with pytest.raises(ValueError):
            seq_key("p/x", -1)
        with pytest.raises(ValueError):
            seq_key("p/x", 1 << 64)

    def test_store_seq_roundtrip(self):
        store = ProvableStore()
        store.set_seq("acks/y", 5, b"ack-commitment")
        assert store.get_seq("acks/y", 5) == b"ack-commitment"
        assert store.contains_seq("acks/y", 5)
        assert not store.contains_seq("acks/y", 6)
        store.delete_seq("acks/y", 5)
        assert not store.contains_seq("acks/y", 5)

    def test_seq_proofs(self):
        from repro.trie.proof import verify_membership, verify_non_membership
        store = ProvableStore()
        for n in range(10):
            store.set_seq("c/z", n, bytes([n]) * 4)
        proof = store.prove_seq("c/z", 3)
        assert verify_membership(store.root_hash, proof)
        absent = store.prove_seq_absence("c/z", 99)
        assert verify_non_membership(store.root_hash, absent)

    def test_seal_seq(self):
        store = ProvableStore()
        for n in range(4):
            store.set_seq("r/w", n, b"\x01")
        root = store.root_hash
        store.seal_seq("r/w", 0)
        assert store.root_hash == root
        with pytest.raises(SealedNodeError):
            store.get_seq("r/w", 0)


class TestPathVerifiers:
    def test_path_membership(self):
        store = ProvableStore()
        store.set("connections/connection-0", b"end-bytes")
        proof = store.prove("connections/connection-0")
        assert verify_path_membership(store.root_hash, "connections/connection-0",
                                      b"end-bytes", proof)
        # Wrong path or value must fail even with a valid proof object.
        assert not verify_path_membership(store.root_hash, "connections/connection-1",
                                          b"end-bytes", proof)
        assert not verify_path_membership(store.root_hash, "connections/connection-0",
                                          b"other", proof)

    def test_path_absence(self):
        store = ProvableStore()
        store.set("a/b", b"v")
        proof = store.prove_absence("a/c")
        assert verify_path_absence(store.root_hash, "a/c", proof)
        assert not verify_path_absence(store.root_hash, "a/d", proof)

    def test_snapshot_serves_historical_roots(self):
        store = ProvableStore()
        store.set("k1", b"v1")
        view = store.snapshot()
        old_root = store.root_hash
        store.set("k2", b"v2")
        assert store.root_hash != old_root
        assert view.root_hash == old_root
        proof = view.prove("k1")
        assert verify_path_membership(old_root, "k1", b"v1", proof)

    def test_present_key_has_no_absence_proof(self):
        store = ProvableStore()
        store.set("a/b", b"v")
        with pytest.raises(TrieError):
            store.prove_absence("a/b")
