"""Forwarding middleware: route codec, hop semantics, and the
differential conformance suite (multi-hop ≡ single-hop).

The differential property: for any seeded sequence of transfers, a
route A → M → B must produce the same end-ledger balances (per base
denom) and the same exactly-once receipt discipline as sending the
same sequence over a direct A → B channel.  Timed-out transfers must
refund the sender identically in both worlds — in the multi-hop world
the hop-2 timeout unwinds through M's middleware rather than refunding
at the origin directly.
"""

import random

import pytest

from repro.errors import IbcError
from repro.fabric.conservation import ConservationChecker, base_denom
from repro.fabric.forward import (
    FORWARD_PREFIX,
    ForwardRoute,
    forward_receiver,
    parse_forward,
)
from repro.ibc import commitment as paths
from repro.ibc.identifiers import ChannelId

from tests.helpers import ProtoFabric

SENDERS = ["alice", "amara", "ayaka"]
RECEIVERS = ["bob", "boris", "bala"]


class TestRouteCodec:
    def test_plain_receiver_passes_through(self):
        assert parse_forward("bob") is None

    def test_single_hop_roundtrip(self):
        encoded = forward_receiver([("transfer", "channel-3")], "bob")
        assert encoded == "fwd:transfer/channel-3|bob"
        route = parse_forward(encoded)
        assert route == ForwardRoute("transfer", "channel-3", "bob")

    def test_nested_route_decodes_hop_by_hop(self):
        encoded = forward_receiver(
            [("transfer", "channel-1"), ("transfer", "channel-9")], "bob")
        first = parse_forward(encoded)
        assert first.channel == "channel-1"
        second = parse_forward(first.next_receiver)
        assert second.channel == "channel-9"
        assert second.next_receiver == "bob"

    @pytest.mark.parametrize("bad", [
        "fwd:transfer|bob",        # no channel
        "fwd:transfer/channel-0",  # no rest
        "fwd:/channel-0|bob",      # no port
        "fwd:transfer/|bob",       # empty channel
    ])
    def test_malformed_routes_rejected(self, bad):
        with pytest.raises(IbcError):
            parse_forward(bad)

    def test_prefix_constant_matches_codec(self):
        assert forward_receiver(
            [("p", "c")], "r").startswith(FORWARD_PREFIX)


def three_chain_fabric(hop_timeout=600.0):
    """A --- M(forwarding) --- B."""
    fabric = ProtoFabric()
    fabric.add_chain("a")
    fabric.add_chain("m", forwarding=True, hop_timeout_seconds=hop_timeout)
    fabric.add_chain("b")
    fabric.link("a", "m")
    fabric.link("m", "b")
    return fabric


class TestForwardHops:
    def test_two_hop_delivery_and_denom_nesting(self):
        fabric = three_chain_fabric()
        a, m, b = fabric.chains["a"], fabric.chains["m"], fabric.chains["b"]
        a.bank.mint("alice", "uatom", 1_000)
        receiver = forward_receiver(
            [("transfer", str(fabric.channels[("m", "b")]))], "bob")
        a.send_transfer(fabric.channels[("a", "m")], "uatom", 400,
                        "alice", receiver)
        fabric.pump()
        chan_ma = fabric.channels[("m", "a")]
        chan_bm = fabric.channels[("b", "m")]
        nested = f"transfer/{chan_bm}/transfer/{chan_ma}/uatom"
        assert b.bank.balance("bob", nested) == 400
        assert m.forward.forwards_started == 1
        assert m.forward.forwards_settled == 1
        assert m.forward.unwinds == 0
        # The funds transit the fwd: address, none remain there.
        assert m.bank.balance(receiver, f"transfer/{chan_ma}/uatom") == 0

    def test_hop_scoped_ack_settles_origin_before_final_delivery(self):
        """Hop 1's ack arrives when M commits the onward send, not when
        B receives — the origin's commitment clears while the onward
        packet is still in flight."""
        fabric = three_chain_fabric()
        a, m = fabric.chains["a"], fabric.chains["m"]
        a.bank.mint("alice", "uatom", 500)
        receiver = forward_receiver(
            [("transfer", str(fabric.channels[("m", "b")]))], "bob")
        packet = a.send_transfer(fabric.channels[("a", "m")], "uatom", 100,
                                 "alice", receiver)
        # Deliver ONLY hop 1 (drop the onward hop for now).
        fabric.pump(drop=lambda src, p: src is m)
        assert not a.host.store.contains_seq(
            paths.commitment_prefix(packet.source_port,
                                    packet.source_channel),
            packet.sequence,
        )
        assert len(m.outbox) == 0  # popped by pump, though dropped
        assert m.forward.forwards_started == 1
        assert m.forward.forwards_settled == 0

    def test_unknown_forward_port_errors_without_moving_funds(self):
        fabric = three_chain_fabric()
        a = fabric.chains["a"]
        a.bank.mint("alice", "uatom", 100)
        a.send_transfer(fabric.channels[("a", "m")], "uatom", 100,
                        "alice", "fwd:bogus/channel-7|bob")
        fabric.pump()
        # Error ack refunded the origin sender in full.
        assert a.bank.balance("alice", "uatom") == 100
        checker = ConservationChecker(
            {name: chain.bank for name, chain in fabric.chains.items()})
        assert checker.check().ok

    def test_forward_to_nonexistent_channel_reverses_recv(self):
        fabric = three_chain_fabric()
        a, m = fabric.chains["a"], fabric.chains["m"]
        a.bank.mint("alice", "uatom", 100)
        a.send_transfer(fabric.channels[("a", "m")], "uatom", 100,
                        "alice", "fwd:transfer/channel-77|bob")
        fabric.pump()
        assert a.bank.balance("alice", "uatom") == 100
        assert m.bank.total_supply(
            f"transfer/{fabric.channels[('m', 'a')]}/uatom") == 0

    def test_hop2_timeout_unwinds_to_origin_sender(self):
        fabric = three_chain_fabric(hop_timeout=600.0)
        a, m = fabric.chains["a"], fabric.chains["m"]
        a.bank.mint("alice", "uatom", 300)
        receiver = forward_receiver(
            [("transfer", str(fabric.channels[("m", "b")]))], "bob")
        a.send_transfer(fabric.channels[("a", "m")], "uatom", 300,
                        "alice", receiver)
        dropped = []
        fabric.pump(drop=lambda src, p: src is m and not dropped
                    and (dropped.append(p) or True))
        assert len(dropped) == 1
        fabric.now += 700.0  # past the hop deadline
        fabric.expire(m, dropped[0])
        fabric.pump()  # the unwind return transfer
        assert a.bank.balance("alice", "uatom") == 300
        assert m.forward.unwinds == 1
        checker = ConservationChecker(
            {name: chain.bank for name, chain in fabric.chains.items()})
        assert checker.check().ok


# ======================================================================
# The differential conformance suite (satellite 1)
# ======================================================================

def _receiver_balances(chain) -> dict[tuple[str, str], int]:
    """(address, base denom) -> total, escrows excluded."""
    totals: dict[tuple[str, str], int] = {}
    for (address, denom), amount in chain.bank.balances().items():
        if address.startswith("escrow/"):
            continue
        key = (address, base_denom(denom))
        totals[key] = totals.get(key, 0) + amount
    return totals


def _run_multi_hop(seed: int, ops) -> tuple[dict, dict, int]:
    """Route every op A → M → B; returns (A balances, B balances,
    receipts on B)."""
    fabric = three_chain_fabric()
    a, m, b = fabric.chains["a"], fabric.chains["m"], fabric.chains["b"]
    for sender in SENDERS:
        a.bank.mint(sender, "uatom", 100_000)
    chan_am = fabric.channels[("a", "m")]
    chan_mb = fabric.channels[("m", "b")]
    for amount, sender, receiver, delivered in ops:
        encoded = forward_receiver([("transfer", str(chan_mb))], receiver)
        a.send_transfer(chan_am, "uatom", amount, sender, encoded)
        if delivered:
            fabric.pump()
        else:
            # Deliver hop 1; drop the onward hop, expire it, unwind.
            dropped = []
            fabric.pump(drop=lambda src, p: src is m and not dropped
                        and (dropped.append(p) or True))
            fabric.now += m.forward.hop_timeout_seconds + 100.0
            fabric.expire(m, dropped[0])
            fabric.pump()
    checker = ConservationChecker(
        {name: chain.bank for name, chain in fabric.chains.items()})
    assert checker.check().ok, checker.check().failures
    assert not m.forward._forwards, "unsettled hops remain"
    return (_receiver_balances(a), _receiver_balances(b),
            b.host.counters.packets_received)


def _run_single_hop(seed: int, ops) -> tuple[dict, dict, int]:
    """The reference world: the same ops over a direct A → B channel."""
    fabric = ProtoFabric()
    a = fabric.add_chain("a")
    b = fabric.add_chain("b")
    fabric.link("a", "b")
    for sender in SENDERS:
        a.bank.mint(sender, "uatom", 100_000)
    chan_ab = fabric.channels[("a", "b")]
    for amount, sender, receiver, delivered in ops:
        timeout = 0.0 if delivered else fabric.now + 600.0
        packet = a.send_transfer(chan_ab, "uatom", amount, sender,
                                 receiver, timeout)
        if delivered:
            fabric.pump()
        else:
            a.outbox.remove(packet)
            fabric.now += 700.0
            fabric.expire(a, packet)
    checker = ConservationChecker(
        {name: chain.bank for name, chain in fabric.chains.items()})
    assert checker.check().ok, checker.check().failures
    return (_receiver_balances(a), _receiver_balances(b),
            b.host.counters.packets_received)


def _sequence(seed: int):
    rng = random.Random(seed)
    ops = []
    for _ in range(rng.randint(3, 8)):
        ops.append((
            rng.randint(1, 500),
            rng.choice(SENDERS),
            rng.choice(RECEIVERS),
            rng.random() > 0.25,  # ~1 in 4 transfers times out
        ))
    return ops


class TestDifferentialConformance:
    """Multi-hop must be observationally equivalent to single-hop."""

    @pytest.mark.parametrize("seed", range(200))
    def test_multi_hop_equals_single_hop(self, seed):
        ops = _sequence(seed)
        multi_a, multi_b, multi_receipts = _run_multi_hop(seed, ops)
        single_a, single_b, single_receipts = _run_single_hop(seed, ops)

        delivered = [op for op in ops if op[3]]
        # Identical end-ledger balances, per (address, base denom).
        assert multi_a == single_a, f"seed {seed}: origin ledgers diverge"
        assert multi_b == single_b, f"seed {seed}: destination ledgers diverge"
        # Exactly-once receipts on the final chain: one per delivered op.
        assert single_receipts == len(delivered)
        assert multi_receipts == len(delivered), (
            f"seed {seed}: {multi_receipts} receipts on B for "
            f"{len(delivered)} delivered transfers")
        # And the delivered value actually arrived.
        expected: dict[tuple[str, str], int] = {}
        for amount, _, receiver, ok in ops:
            if ok:
                key = (receiver, "uatom")
                expected[key] = expected.get(key, 0) + amount
        arrived = {k: v for k, v in multi_b.items() if k[0] in RECEIVERS}
        assert arrived == expected
