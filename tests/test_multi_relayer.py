"""Multiple permissionless relayers racing (§III-C).

"Relayers and Fishermen are both permissionless and can be run by
anyone" — and because everything is proof-checked on-chain, competing
relayers can only duplicate work, never corrupt state.  These tests run
two independent relayers over the same link and check exactly-once
delivery semantics survive the race.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.guest.api import GuestApi
from repro.guest.config import GuestConfig
from repro.host.accounts import Address
from repro.relayer.relayer import Relayer, RelayerConfig
from repro.units import sol_to_lamports
from repro.validators.profiles import simple_profiles


@pytest.fixture
def racing():
    dep = Deployment(DeploymentConfig(
        seed=61,
        guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
    ))
    # A second, completely independent relayer with its own payer.
    rival_payer = Address.derive("rival-relayer-payer")
    dep.host.airdrop(rival_payer, sol_to_lamports(10_000.0))
    rival_api = GuestApi(dep.host, dep.contract, rival_payer)
    rival = Relayer(
        dep.sim, dep.host, dep.counterparty, dep.contract,
        rival_api, dep.guest_client, dep.guest_client_id_on_cp,
        RelayerConfig(),
    )
    channels = dep.establish_link()
    # The rival joins after the handshake; wire its channel knowledge.
    rival.guest_connection_id = dep.relayer.guest_connection_id
    rival.cp_connection_id = dep.relayer.cp_connection_id
    rival.guest_channel = dep.relayer.guest_channel
    rival.cp_channel = dep.relayer.cp_channel
    return dep, rival, channels


class TestRelayerRace:
    def test_guest_to_cp_exactly_once(self, racing):
        dep, rival, (guest_chan, cp_chan) = racing
        dep.contract.bank.mint("alice", "GUEST", 500)
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 100, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(240.0)

        voucher = dep.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
        # Delivered exactly once despite two relayers pushing it.
        assert dep.counterparty.bank.balance("bob", voucher) == 100
        assert dep.counterparty.ibc.counters.packets_received == 1
        # The race produced at least one rejected duplicate somewhere.
        total_attempts = (dep.relayer.metrics.packets_relayed_to_counterparty
                          + rival.metrics.packets_relayed_to_counterparty)
        assert total_attempts >= 1

    def test_cp_to_guest_exactly_once(self, racing):
        dep, rival, (guest_chan, cp_chan) = racing
        dep.counterparty.bank.mint("carol", "PICA", 500)

        def send():
            data = dep.counterparty.transfer.make_payload(cp_chan, "PICA", 70, "carol", "dave")
            dep.counterparty.ibc.send_packet(dep.counterparty.transfer_port, cp_chan, data, 0.0)

        dep.counterparty.submit(send)
        dep.run_for(400.0)

        voucher = dep.contract.transfer.voucher_denom(guest_chan, "PICA")
        assert dep.contract.bank.balance("dave", voucher) == 70
        assert dep.contract.ibc.counters.packets_received == 1
        # Both relayers attempted the delivery; the double-delivery guard
        # (the sealed/written receipt) rejected the loser's bundle.
        attempts = len(dep.relayer.metrics.deliveries) + len(rival.metrics.deliveries)
        assert attempts >= 2
        failures = [d for d in dep.relayer.metrics.deliveries + rival.metrics.deliveries
                    if not d.success]
        assert any("already received" in (d.error or "") for d in failures)

    def test_funds_conserved_under_race(self, racing):
        dep, rival, (guest_chan, cp_chan) = racing
        dep.contract.bank.mint("alice", "GUEST", 300)
        for amount in (50, 60, 70):
            payload = dep.contract.transfer.make_payload(
                guest_chan, "GUEST", amount, "alice", "bob",
            )
            dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(400.0)

        voucher = dep.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
        escrow = dep.contract.transfer.escrow_address(guest_chan)
        assert dep.counterparty.bank.balance("bob", voucher) == 180
        assert dep.contract.bank.balance("alice", "GUEST") == 120
        assert dep.contract.bank.balance(escrow, "GUEST") == 180
        assert dep.counterparty.bank.total_supply(voucher) == 180
