"""Property suite for accountability slashing (docs/ACCOUNTABILITY.md).

200 seeded random interleavings of bonds, unbonding requests and
accountability slashes against the staking pool, checking on every step

* stake conservation: the pool's locked total plus everything ever
  slashed equals everything ever bonded (a lamport-exact ledger),
* the liveness floor: a slash never drops the eligible-candidate count
  below ``min_live`` when it started at or above it, and
* determinism: replaying the same interleaving — with each slash's
  offender list shuffled — lands on the identical outcome sequence and
  pool fingerprint.
"""

import random
from fractions import Fraction

from repro.accountability import apply_accountability_slash
from repro.crypto.simsig import SimSigScheme
from repro.guest.config import GuestConfig
from repro.guest.staking import StakingPool

SCHEME = SimSigScheme()
SEEDS = range(200)
FRACTIONS = (Fraction(1, 1), Fraction(1, 2), Fraction(1, 3), Fraction(2, 3))

_KEY_CACHE = {}


def validator_key(index):
    if index not in _KEY_CACHE:
        seed = b"prop" + index.to_bytes(4, "big") + bytes(24)
        _KEY_CACHE[index] = SCHEME.keypair_from_seed(seed).public_key
    return _KEY_CACHE[index]


def build_script(seed):
    """One deterministic interleaving: (setup, steps)."""
    rng = random.Random(seed)
    count = rng.randint(3, 8)
    setup = {
        "min_live": rng.randint(0, 2),
        "stakes": [rng.randint(1, 1_000) * 1_000 for _ in range(count)],
    }
    steps = []
    for _ in range(rng.randint(1, 6)):
        kind = rng.choice(("slash", "slash", "bond", "unbond"))
        if kind == "slash":
            offenders = rng.sample(range(count), rng.randint(1, count))
            steps.append(("slash", tuple(offenders), rng.choice(FRACTIONS)))
        elif kind == "bond":
            steps.append(("bond", rng.randrange(count),
                          rng.randint(1, 500) * 1_000))
        else:
            steps.append(("unbond", rng.randrange(count)))
    return setup, steps


def pool_fingerprint(pool, count):
    return tuple(
        (pool.stake_of(validator_key(index)),
         pool.withdrawable(validator_key(index), float("inf")))
        for index in range(count)
    )


def run_script(setup, steps, shuffle_seed=None):
    """Execute one interleaving; returns (outcomes, final fingerprint)
    while asserting conservation and the liveness floor throughout."""
    config = GuestConfig(min_stake_lamports=1)
    pool = StakingPool(config)
    count = len(setup["stakes"])
    min_live = setup["min_live"]
    bonded_total = 0
    for index, stake in enumerate(setup["stakes"]):
        pool.bond(validator_key(index), stake)
        bonded_total += stake
    shuffler = random.Random(shuffle_seed) if shuffle_seed is not None else None

    outcomes = []
    now = 0.0
    for step in steps:
        now += 10.0
        if step[0] == "bond":
            _, index, amount = step
            key = validator_key(index)
            # Ejected offenders stay out: re-bonding them would dodge
            # the ejection, so the interleaving skips them.
            if pool.stake_of(key) > 0:
                pool.bond(key, amount)
                bonded_total += amount
        elif step[0] == "unbond":
            _, index = step
            key = validator_key(index)
            stake = pool.stake_of(key)
            if stake > 1:
                pool.request_unbond(key, stake // 2, now)
        else:
            _, offender_indices, fraction = step
            offenders = [validator_key(index) for index in offender_indices]
            if shuffler is not None:
                shuffler.shuffle(offenders)
            eligible_before = pool.eligible_count()
            outcome = apply_accountability_slash(
                pool, offenders, fraction=fraction, min_live=min_live)
            outcomes.append(outcome)

            assert outcome.conserves_stake(), (
                f"slash lost lamports: {outcome}")
            floor = min(min_live, eligible_before)
            assert pool.eligible_count() >= floor, (
                f"slash broke the liveness floor {min_live}: "
                f"{eligible_before} -> {pool.eligible_count()}")
            for offender in outcome.ejected:
                assert pool.stake_of(offender) == 0
            for offender in outcome.spared:
                assert pool.is_eligible(offender)

        # The lamport ledger balances after *every* step: nothing the
        # pool ever held is unaccounted for.
        assert pool.locked_total() + pool.slashed_total == bonded_total

    return outcomes, pool_fingerprint(pool, count)


def test_slashing_properties_across_interleavings():
    exercised = 0
    for seed in SEEDS:
        setup, steps = build_script(seed)
        outcomes, fingerprint = run_script(setup, steps)
        exercised += len(outcomes)
        # Replay with shuffled offender order: byte-identical outcomes.
        replay_outcomes, replay_fingerprint = run_script(
            setup, steps, shuffle_seed=seed + 1)
        assert replay_outcomes == outcomes, f"seed {seed} not deterministic"
        assert replay_fingerprint == fingerprint, f"seed {seed} diverged"
    # The generator must actually exercise the slashing path at scale.
    assert exercised >= 200


def test_total_wipeout_respects_floor_and_ledger():
    """Every validator implicated at full fraction, repeatedly."""
    for min_live in (0, 1, 2):
        config = GuestConfig(min_stake_lamports=1)
        pool = StakingPool(config)
        keys = [validator_key(index) for index in range(4)]
        for key in keys:
            pool.bond(key, 1_000)
        first = apply_accountability_slash(
            pool, keys, fraction=Fraction(1, 1), min_live=min_live)
        assert first.conserves_stake()
        assert pool.eligible_count() == min_live
        assert len(first.spared) == min_live
        # A second identical prosecution finds nothing left to take
        # from the ejected and still refuses to eject the spared.
        second = apply_accountability_slash(
            pool, keys, fraction=Fraction(1, 1), min_live=min_live)
        assert second.conserves_stake()
        assert pool.eligible_count() == min_live
        assert pool.locked_total() + pool.slashed_total == 4_000
