"""Tests for the relayer's spend ledger and escalating fee policy."""

import pytest

from repro.host.fees import BaseFee, PriorityFee
from repro.relayer.strategy import EscalatingFeePolicy, SpendLedger
from repro.units import usd_to_lamports


class TestSpendLedger:
    def test_accumulates_by_category(self):
        ledger = SpendLedger()
        ledger.record("lc-update", 1_000_000, tx_count=36)
        ledger.record("lc-update", 900_000, tx_count=34)
        ledger.record("delivery", 20_000, tx_count=4)
        assert ledger.by_category["lc-update"] == 1_900_000
        assert ledger.transactions["lc-update"] == 70
        assert ledger.total_lamports() == 1_920_000

    def test_usd_conversion(self):
        ledger = SpendLedger()
        ledger.record("delivery", usd_to_lamports(1.0))
        assert ledger.total_usd() == pytest.approx(1.0)

    def test_summary_lists_categories(self):
        ledger = SpendLedger()
        ledger.record("acks", 5_000)
        ledger.record("lc-update", 10_000)
        text = ledger.summary()
        assert "acks" in text and "lc-update" in text and "total" in text


class TestEscalatingFeePolicy:
    def test_starts_cheap(self):
        policy = EscalatingFeePolicy(escalate_after=10.0)
        assert isinstance(policy.strategy_for(0.0), BaseFee)
        assert isinstance(policy.strategy_for(9.9), BaseFee)
        assert policy.escalations == 0

    def test_escalates_after_deadline(self):
        policy = EscalatingFeePolicy(escalate_after=10.0, initial_cu_price=100)
        strategy = policy.strategy_for(10.0)
        assert isinstance(strategy, PriorityFee)
        assert strategy.compute_unit_price == 100
        assert policy.escalations == 1

    def test_price_doubles_with_waiting_time(self):
        policy = EscalatingFeePolicy(escalate_after=10.0, initial_cu_price=100)
        first = policy.strategy_for(10.0)
        third = policy.strategy_for(30.0)
        assert third.compute_unit_price == 4 * first.compute_unit_price

    def test_price_capped(self):
        policy = EscalatingFeePolicy(escalate_after=1.0, initial_cu_price=1_000_000,
                                     max_cu_price=2_000_000)
        strategy = policy.strategy_for(1_000.0)
        assert strategy.compute_unit_price == 2_000_000

    def test_week_long_wait_prices_instantly(self):
        """Regression: the escalation exponent is clamped *before* the
        power is taken.  Without the clamp a week-stuck operation asks
        for 2**60480 — a bignum large enough to stall the relayer —
        even though the price was going to be capped anyway."""
        import time
        policy = EscalatingFeePolicy(escalate_after=10.0,
                                     initial_cu_price=100_000,
                                     max_cu_price=8_000_000)
        started = time.perf_counter()
        strategy = policy.strategy_for(7 * 24 * 3600.0)
        assert time.perf_counter() - started < 0.5
        assert strategy.compute_unit_price == 8_000_000
        assert strategy.compute_unit_price.bit_length() < 64

    def test_price_monotone_and_bounded(self):
        """More waiting never costs less, and never costs more than the
        cap — across the whole escalation curve, including absurd waits."""
        policy = EscalatingFeePolicy(escalate_after=10.0,
                                     initial_cu_price=100,
                                     max_cu_price=25_000)
        waits = [10.0, 15.0, 20.0, 40.0, 80.0, 160.0, 1e3, 1e6, 1e9, 1e15]
        prices = [policy.strategy_for(w).compute_unit_price for w in waits]
        assert all(a <= b for a, b in zip(prices, prices[1:]))
        assert all(p <= policy.max_cu_price for p in prices)
        assert prices[-1] == policy.max_cu_price

    def test_escalated_fee_beats_base_in_congested_mempool(self):
        """End to end: under heavy congestion the escalated strategy has
        a materially lower expected wait than the base fee."""
        from repro.sim.rng import Rng
        policy = EscalatingFeePolicy(escalate_after=5.0)
        escalated = policy.strategy_for(20.0)
        rng_a, rng_b = Rng(3), Rng(3)
        base_wait = sum(BaseFee().scheduling_delay(rng_a, 0.9) for _ in range(300)) / 300
        esc_wait = sum(escalated.scheduling_delay(rng_b, 0.9) for _ in range(300)) / 300
        assert esc_wait < base_wait / 2


class TestLedgerWiring:
    def test_relayer_accounts_every_flow(self):
        from repro import Deployment, DeploymentConfig
        from repro.guest.config import GuestConfig
        from repro.validators.profiles import simple_profiles
        dep = Deployment(DeploymentConfig(
            seed=171,
            guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
            profiles=simple_profiles(4),
        ))
        guest_chan, cp_chan = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 100)
        dep.counterparty.bank.mint("carol", "PICA", 100)
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 10, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)

        def send():
            data = dep.counterparty.transfer.make_payload(cp_chan, "PICA", 10, "carol", "dave")
            dep.counterparty.ibc.send_packet(dep.counterparty.transfer_port, cp_chan, data, 0.0)
        dep.counterparty.submit(send)
        dep.run_for(400.0)

        ledger = dep.relayer.ledger
        assert ledger.by_category.get("lc-update", 0) > 0
        assert ledger.by_category.get("delivery", 0) > 0
        assert ledger.by_category.get("ack-return", 0) > 0
        # The light-client updates dominate the bill (§V-B's story).
        assert ledger.by_category["lc-update"] > 10 * ledger.by_category["delivery"]
        assert "total" in ledger.summary()
