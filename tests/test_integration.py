"""End-to-end integration tests: the whole deployment on one event loop.

These are the tests that justify the reproduction: handshakes, ICS-20
transfers in both directions (with acks, sealing and commitment
clean-up), the Δ empty-block rule, the chunked light-client machinery,
and the Fisherman → slashing pipeline — all through real host
transactions under the real runtime limits.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.counterparty.chain import CounterpartyConfig
from repro.guest.config import GuestConfig
from repro.validators.profiles import simple_profiles


def small_config(seed=11, delta=120.0, **kw):
    return DeploymentConfig(
        seed=seed,
        guest=GuestConfig(delta_seconds=delta, min_stake_lamports=1),
        profiles=simple_profiles(4),
        **kw,
    )


@pytest.fixture(scope="module")
def linked():
    """One linked deployment shared by the read-only checks."""
    dep = Deployment(small_config())
    channels = dep.establish_link()
    return dep, channels


class TestLinkEstablishment:
    def test_link_opens(self, linked):
        dep, (guest_chan, cp_chan) = linked
        assert str(guest_chan) == "channel-0"
        assert str(cp_chan) == "channel-0"

    def test_chunked_updates_happened(self, linked):
        """The handshake itself needs counterparty consensus on the
        guest — through the chunked flow of §IV."""
        dep, _ = linked
        assert len(dep.relayer.metrics.lc_updates) >= 2
        for result in dep.relayer.metrics.lc_updates:
            assert result.success
            assert result.transaction_count > 10  # genuinely chunked
            assert result.signature_count > 100   # Picasso-scale commits

    def test_guest_blocks_finalised_by_quorum(self, linked):
        dep, _ = linked
        finalised = [b for b in dep.contract.blocks[1:] if b.finalised]
        assert finalised
        for block in finalised:
            epoch = dep.contract.epochs[block.header.epoch_id]
            assert epoch.has_quorum(block.signer_set())


class TestGuestToCounterpartyTransfer:
    def test_full_round_trip(self):
        dep = Deployment(small_config(seed=21))
        guest_chan, cp_chan = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 1_000)
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 250, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(180.0)

        voucher = dep.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
        assert dep.counterparty.bank.balance("bob", voucher) == 250
        assert dep.contract.bank.balance("alice", "GUEST") == 750
        # The ack came back: the guest's commitment is deleted.
        assert dep.contract.ibc.counters.packets_acknowledged == 1
        from repro.ibc import commitment as paths
        assert not dep.contract.ibc.store.contains_seq(
            paths.commitment_prefix("transfer", guest_chan), 0,
        )

    def test_voucher_round_trip_preserves_supply(self):
        dep = Deployment(small_config(seed=22))
        guest_chan, cp_chan = dep.establish_link()
        dep.contract.bank.mint("alice", "GUEST", 1_000)
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 400, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(180.0)

        voucher = dep.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
        assert dep.counterparty.bank.balance("bob", voucher) == 400

        def send_back():
            data = dep.counterparty.transfer.make_payload(cp_chan, voucher, 400, "bob", "alice")
            dep.counterparty.ibc.send_packet(dep.counterparty.transfer_port, cp_chan, data, 0.0)
        dep.counterparty.submit(send_back)
        dep.run_for(300.0)

        assert dep.contract.bank.balance("alice", "GUEST") == 1_000
        assert dep.counterparty.bank.total_supply(voucher) == 0
        escrow = dep.contract.transfer.escrow_address(guest_chan)
        assert dep.contract.bank.balance(escrow, "GUEST") == 0


class TestCounterpartyToGuestTransfer:
    def test_delivery_via_bundles(self):
        dep = Deployment(small_config(seed=23))
        guest_chan, cp_chan = dep.establish_link()
        dep.counterparty.bank.mint("carol", "PICA", 900)

        def send():
            data = dep.counterparty.transfer.make_payload(cp_chan, "PICA", 300, "carol", "dave")
            dep.counterparty.ibc.send_packet(dep.counterparty.transfer_port, cp_chan, data, 0.0)
        dep.counterparty.submit(send)
        dep.run_for(240.0)

        voucher = dep.contract.transfer.voucher_denom(guest_chan, "PICA")
        assert dep.contract.bank.balance("dave", voucher) == 300
        # §V-A: the delivery was a small atomic bundle in one host block.
        deliveries = dep.relayer.metrics.deliveries
        assert deliveries and deliveries[-1].success
        assert 2 <= deliveries[-1].transaction_count <= 6

    def test_receipt_sealed_after_delivery(self):
        dep = Deployment(small_config(seed=24))
        guest_chan, cp_chan = dep.establish_link()
        dep.counterparty.bank.mint("carol", "PICA", 900)

        def send():
            data = dep.counterparty.transfer.make_payload(cp_chan, "PICA", 10, "carol", "dave")
            dep.counterparty.ibc.send_packet(dep.counterparty.transfer_port, cp_chan, data, 0.0)
        for _ in range(3):
            dep.counterparty.submit(send)
            dep.run_for(240.0)

        # Lagged sealing: with receipts 0..2 written, receipt 0 is sealed.
        from repro.errors import SealedNodeError
        from repro.ibc import commitment as paths
        with pytest.raises(SealedNodeError):
            dep.contract.ibc.store.get_seq(
                paths.receipt_prefix("transfer", guest_chan), 0,
            )
        assert dep.contract.ibc.counters.packets_received == 3

    def test_guest_ack_returns_and_is_sealed(self):
        dep = Deployment(small_config(seed=25))
        guest_chan, cp_chan = dep.establish_link()
        dep.counterparty.bank.mint("carol", "PICA", 900)

        def send():
            data = dep.counterparty.transfer.make_payload(cp_chan, "PICA", 10, "carol", "dave")
            dep.counterparty.ibc.send_packet(dep.counterparty.transfer_port, cp_chan, data, 0.0)
        for _ in range(3):
            dep.counterparty.submit(send)
            dep.run_for(300.0)

        assert dep.counterparty.ibc.counters.packets_acknowledged == 3
        # After the counterparty processed the acks, the relayer confirmed
        # them on the guest and the lagged rule sealed ack 0 (§III-A).
        from repro.errors import SealedNodeError
        from repro.ibc import commitment as paths
        with pytest.raises(SealedNodeError):
            dep.contract.ibc.store.get_seq(
                paths.ack_prefix("transfer", guest_chan), 0,
            )


class TestDeltaRule:
    def test_empty_blocks_only_after_delta(self):
        dep = Deployment(small_config(seed=26, delta=100.0))
        dep.run_for(350.0)
        blocks = dep.contract.blocks
        # Genesis + Δ-triggered empty blocks; intervals ≥ Δ (minus the
        # cranker's poll jitter margin).
        times = [b.header.timestamp for b in blocks]
        intervals = [b - a for a, b in zip(times, times[1:])]
        assert intervals, "no empty blocks were generated"
        for interval in intervals:
            assert interval >= 100.0

    def test_state_change_generates_promptly(self):
        dep = Deployment(small_config(seed=27, delta=10_000.0))
        dep.establish_link()  # handshake mutates state repeatedly
        # Blocks exist long before Δ = 10 000 s.
        assert dep.contract.head.height >= 2
        assert dep.sim.now < 10_000.0


class TestFishermanSlashing:
    def test_equivocation_slashed(self):
        config = small_config(seed=28)
        config.with_fisherman = True
        dep = Deployment(config)
        dep.run_for(30.0)

        offender = dep.validators[0]
        stake_before = dep.contract.staking.stake_of(offender.keypair.public_key)
        assert stake_before > 0

        from repro.fisherman.evidence import ByzantineValidator
        byz = ByzantineValidator(dep.sim, dep.gossip, offender.keypair)
        byz.equivocate(height=0)  # conflicts with the real genesis block
        dep.run_for(60.0)

        assert dep.fisherman is not None
        assert dep.fisherman.reports and dep.fisherman.reports[0].accepted
        assert dep.contract.staking.stake_of(offender.keypair.public_key) == 0
        assert dep.contract.staking.slashed_total >= stake_before // 2

    def test_above_head_signature_slashed(self):
        config = small_config(seed=29)
        config.with_fisherman = True
        dep = Deployment(config)
        dep.run_for(30.0)
        offender = dep.validators[1]

        from repro.fisherman.evidence import ByzantineValidator
        byz = ByzantineValidator(dep.sim, dep.gossip, offender.keypair)
        byz.equivocate(height=500)  # far above the head
        dep.run_for(60.0)
        assert dep.fisherman.reports and dep.fisherman.reports[0].accepted

    def test_honest_signature_not_prosecuted(self):
        config = small_config(seed=30)
        config.with_fisherman = True
        dep = Deployment(config)
        dep.run_for(30.0)

        from repro.fisherman.evidence import GOSSIP_TOPIC, BlockClaim
        honest = dep.validators[0].keypair
        genesis = dep.contract.blocks[0]
        claim = BlockClaim(
            validator=honest.public_key,
            height=0,
            fingerprint=genesis.header.fingerprint(),
            signature=honest.sign(genesis.header.sign_message()),
        )
        dep.gossip.publish(GOSSIP_TOPIC, claim)
        dep.run_for(30.0)
        assert not dep.fisherman.reports
        assert dep.contract.staking.stake_of(honest.public_key) > 0

    def test_forged_evidence_rejected_on_chain(self):
        """A fisherman cannot frame a validator: the evidence signature
        is runtime-verified against the accused key."""
        config = small_config(seed=31)
        config.with_fisherman = True
        dep = Deployment(config)
        dep.run_for(30.0)

        framer = dep.scheme.keypair_from_seed(bytes([66]) * 32)
        victim = dep.validators[0].keypair.public_key
        from repro.guest.block import sign_message
        fingerprint = b"\x99" * 32
        forged_signature = framer.sign(sign_message(3, fingerprint))

        results = []
        dep.relayer_api.submit_evidence(
            offender=victim, height=3, fingerprint=fingerprint,
            signature=forged_signature,
            message=sign_message(3, fingerprint),
            on_result=results.append,
        )
        dep.run_for(30.0)
        assert results and not results[0].success
        assert dep.contract.staking.stake_of(victim) > 0


class TestDeterminism:
    def test_identical_seeds_identical_traces(self):
        def trace(seed):
            dep = Deployment(small_config(seed=seed))
            dep.establish_link()
            dep.run_for(60.0)
            return (
                dep.contract.head.height,
                bytes(dep.contract.store.root_hash),
                [r.transaction_count for r in dep.relayer.metrics.lc_updates],
                dep.host.total_fees_burned(),
            )

        assert trace(77) == trace(77)

    def test_different_seeds_diverge(self):
        def fees(seed):
            dep = Deployment(small_config(seed=seed))
            dep.establish_link()
            return dep.host.total_fees_burned()

        assert fees(78) != fees(79)
