"""Property-based tests (hypothesis) for the sealable trie invariants.

These are the adversarial guarantees the paper's security argument rests
on: the trie behaves as a map; the root is a binding commitment; sealing
never changes the root; proofs cannot be transplanted or tampered with.
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import Hash
from repro.errors import KeyNotFoundError, SealedNodeError
from repro.trie import (
    MembershipProof,
    SealableTrie,
    verify_membership,
    verify_non_membership,
)

# Hashed 32-byte keys, like the provable stores use.
keys = st.binary(min_size=1, max_size=8).map(lambda b: hashlib.sha256(b).digest())
values = st.binary(min_size=0, max_size=64)
entries = st.dictionaries(keys, values, min_size=0, max_size=40)


@given(entries)
def test_trie_behaves_as_map(mapping):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    for k, v in mapping.items():
        assert trie.get(k) == v
    assert dict(trie.items()) == mapping


@given(entries)
def test_root_independent_of_insertion_order(mapping):
    a = SealableTrie()
    b = SealableTrie()
    items = list(mapping.items())
    for k, v in items:
        a.set(k, v)
    for k, v in reversed(items):
        b.set(k, v)
    assert a.root_hash == b.root_hash


@given(entries, keys, values)
def test_root_is_binding(mapping, extra_key, extra_value):
    """Tries with different contents have different roots."""
    a = SealableTrie()
    for k, v in mapping.items():
        a.set(k, v)
    b = SealableTrie()
    for k, v in mapping.items():
        b.set(k, v)
    changed = extra_key not in mapping or mapping[extra_key] != extra_value
    b.set(extra_key, extra_value)
    if changed:
        assert a.root_hash != b.root_hash
    else:
        assert a.root_hash == b.root_hash


@given(st.dictionaries(keys, values, min_size=1, max_size=40))
def test_membership_proofs_verify(mapping):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    root = trie.root_hash
    for k in mapping:
        proof = trie.prove(k)
        assert verify_membership(root, proof)
        # Wire round-trip preserves validity.
        assert verify_membership(root, MembershipProof.from_bytes(proof.to_bytes()))


@given(st.dictionaries(keys, values, min_size=1, max_size=40), keys)
def test_absence_proofs_verify(mapping, probe):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    if probe in mapping:
        return
    proof = trie.prove_absence(probe)
    assert verify_non_membership(trie.root_hash, proof)


@given(st.dictionaries(keys, values, min_size=2, max_size=40), st.data())
def test_proof_value_tampering_detected(mapping, data):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    k = data.draw(st.sampled_from(sorted(mapping)))
    proof = trie.prove(k)
    tampered_value = data.draw(values.filter(lambda v: v != mapping[k]))
    forged = MembershipProof(
        key=proof.key, value=tampered_value, steps=proof.steps, leaf_path=proof.leaf_path,
    )
    assert not verify_membership(trie.root_hash, forged)


@given(st.dictionaries(keys, values, min_size=2, max_size=40), st.data())
def test_proof_cannot_be_transplanted(mapping, data):
    """A proof for key A never verifies as a proof for key B."""
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    ks = sorted(mapping)
    a = data.draw(st.sampled_from(ks))
    b = data.draw(st.sampled_from([k for k in ks if k != a]))
    proof = trie.prove(a)
    forged = MembershipProof(
        key=b, value=proof.value, steps=proof.steps, leaf_path=proof.leaf_path,
    )
    assert not verify_membership(trie.root_hash, forged)


@given(st.dictionaries(keys, values, min_size=1, max_size=30), st.data())
@settings(max_examples=50)
def test_sealing_preserves_root_and_blocks_access(mapping, data):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    root = trie.root_hash
    to_seal = data.draw(st.lists(st.sampled_from(sorted(mapping)), unique=True))
    for k in to_seal:
        trie.seal(k)
        assert trie.root_hash == root
    for k in to_seal:
        try:
            trie.get(k)
            raise AssertionError("sealed key must not be readable")
        except SealedNodeError:
            pass
        except KeyNotFoundError:
            raise AssertionError("sealed key must raise SealedNodeError")
    # Unsealed siblings are untouched unless their path crosses a sealed
    # subtree — with hashed keys that cannot happen for distinct keys.
    for k, v in mapping.items():
        if k not in to_seal:
            assert trie.get(k) == v


@given(st.dictionaries(keys, values, min_size=1, max_size=30), st.data())
@settings(max_examples=50)
def test_delete_then_reinsert_restores_root(mapping, data):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    root = trie.root_hash
    k = data.draw(st.sampled_from(sorted(mapping)))
    trie.delete(k)
    assert not trie.contains(k)
    trie.set(k, mapping[k])
    assert trie.root_hash == root


@given(entries)
def test_empty_after_deleting_everything(mapping):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    for k in mapping:
        trie.delete(k)
    assert trie.root_hash == Hash.zero()
    assert trie.node_count() == 0


# ----------------------------------------------------------------------
# Differential testing against a dict reference model
# ----------------------------------------------------------------------
#
# The trie carries proof memoization and cached branch-child hashes, so
# the risky failure mode is no longer "one operation is wrong" but "a
# cache survives a mutation it should not have".  Driving the real trie
# and a plain-dict model through the same random op sequences — checking
# the root, lookups and proof verifiability after *every* step — is the
# test shape that catches stale-cache bugs.

_POOL = [hashlib.sha256(b"diff-%d" % i).digest() for i in range(12)]

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("set"), st.sampled_from(_POOL),
                  st.binary(min_size=0, max_size=32)),
        st.tuples(st.just("delete"), st.sampled_from(_POOL)),
        st.tuples(st.just("seal"), st.sampled_from(_POOL)),
    ),
    min_size=1, max_size=20,
)


def _reference_root(live: dict, sealed: dict) -> Hash:
    """Sealing preserves the root, so the model's root is the root of a
    fresh trie holding every committed (live or sealed) entry."""
    fresh = SealableTrie()
    for k, v in {**live, **sealed}.items():
        fresh.set(k, v)
    return fresh.root_hash


@settings(max_examples=220, deadline=None)
@given(_ops, st.data())
def test_differential_against_dict_model(ops, data):
    trie = SealableTrie()
    live: dict = {}    # readable committed entries
    sealed: dict = {}  # committed but sealed away

    for op in ops:
        kind, key = op[0], op[1]
        if kind == "set":
            value = op[2]
            if key in sealed:
                _expect(SealedNodeError, lambda: trie.set(key, value))
            else:
                try:
                    trie.set(key, value)
                    live[key] = value
                except SealedNodeError:
                    # The write path for a *new* key can dead-end at a
                    # sealed leaf standing where the paths diverge.
                    assert sealed and key not in live
        elif kind == "delete":
            if key in sealed:
                _expect(SealedNodeError, lambda: trie.delete(key))
            elif key in live:
                trie.delete(key)
                del live[key]
            else:
                _expect_miss(sealed, lambda: trie.delete(key))
        else:  # seal
            if key in sealed:
                _expect(SealedNodeError, lambda: trie.seal(key))
            elif key in live:
                trie.seal(key)
                sealed[key] = live.pop(key)
            else:
                _expect_miss(sealed, lambda: trie.seal(key))

        # -- after every step, the trie must agree with the model --
        # The root comparison is STRICT: sealing re-paths stubs on
        # collapse, so the incremental root always equals a fresh
        # rebuild of the committed mapping, deletes included.
        root = trie.root_hash
        assert root == _reference_root(live, sealed)
        assert (trie.storage_bytes(), trie.node_count(),
                trie.sealed_count()) == trie.recount_aggregates()
        for k, v in live.items():
            assert trie.get(k) == v
        for k in sealed:
            _expect(SealedNodeError, lambda k=k: trie.get(k))

        if live:
            probe = data.draw(st.sampled_from(sorted(live)), label="prove key")
            proof = trie.prove(probe)
            assert proof.value == live[probe]
            assert verify_membership(root, proof)
            # Memoized re-proof is byte-identical and still verifies.
            assert trie.prove(probe).to_bytes() == proof.to_bytes()
        absent = data.draw(
            st.sampled_from([k for k in _POOL
                             if k not in live and k not in sealed] or [None]),
            label="absence key",
        )
        if absent is not None:
            try:
                assert verify_non_membership(root, trie.prove_absence(absent))
            except SealedNodeError:
                # The absent key's path may dead-end inside a sealed
                # region, where no evidence can be read.
                assert sealed


def test_delete_of_last_live_sibling_of_a_sealed_stub():
    """Deterministic regression for the shape PR 5 papered over: a
    delete that leaves a sealed stub as a branch's lone occupant.
    Sealed stubs now retain their path skeleton, so the branch
    collapses by re-pathing the stub and the incremental root equals a
    fresh rebuild holding only the sealed entry — no divergence."""
    k_sealed = hashlib.sha256(b"stub-kept").digest()
    k_live = hashlib.sha256(b"stub-doomed").digest()
    trie = SealableTrie()
    trie.set(k_sealed, b"kept")
    trie.set(k_live, b"doomed")
    trie.seal(k_sealed)
    root_both = trie.root_hash

    trie.delete(k_live)
    assert not trie.contains(k_live)
    root_after = trie.root_hash
    assert root_after != root_both

    # The collapse normalizes the shape: the commitment matches a
    # fresh trie holding just the surviving (sealed) entry.
    fresh = SealableTrie()
    fresh.set(k_sealed, b"kept")
    assert root_after == fresh.root_hash

    # The deleted key is provably absent — its probe diverges from the
    # re-pathed sealed leaf stub, which still carries path + commitment.
    assert verify_non_membership(root_after, trie.prove_absence(k_live))

    # The sealed entry itself stays unreadable but committed.
    _expect(SealedNodeError, lambda: trie.get(k_sealed))

    # Reinsertion splits the stub back out and restores the exact
    # pre-delete root.
    trie.set(k_live, b"doomed")
    assert trie.root_hash == root_both


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=10, max_value=80))
def test_cached_aggregates_survive_sequenced_churn(window, total):
    """The per-node aggregate caches (storage bytes / live nodes /
    sealed stubs) must track a full recount exactly through the guest's
    real workload shape: monotone sequenced inserts with a trailing
    window of seals and deletes."""
    prefix = hashlib.sha256(b"agg-channel").digest()[:24]
    seq_key = lambda i: prefix + i.to_bytes(8, "big")
    trie = SealableTrie()
    for i in range(total):
        trie.set(seq_key(i), b"receipt-%d" % i)
        if i >= window:
            j = i - window
            if j % 3 == 0:
                trie.delete(seq_key(j))
            else:
                trie.seal(seq_key(j))
        assert (trie.storage_bytes(), trie.node_count(),
                trie.sealed_count()) == trie.recount_aggregates()


def _expect(error, thunk):
    try:
        thunk()
    except error:
        return
    raise AssertionError(f"expected {error.__name__}")


def _expect_miss(sealed, thunk):
    """An operation on an absent key must miss: ``KeyNotFoundError``
    normally, or ``SealedNodeError`` when its path hits a sealed node
    first (only possible if something is sealed)."""
    try:
        thunk()
    except KeyNotFoundError:
        return
    except SealedNodeError:
        assert sealed, "SealedNodeError with nothing sealed"
        return
    raise AssertionError("expected the operation to miss")
