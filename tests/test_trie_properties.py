"""Property-based tests (hypothesis) for the sealable trie invariants.

These are the adversarial guarantees the paper's security argument rests
on: the trie behaves as a map; the root is a binding commitment; sealing
never changes the root; proofs cannot be transplanted or tampered with.
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import Hash
from repro.errors import KeyNotFoundError, SealedNodeError
from repro.trie import (
    MembershipProof,
    SealableTrie,
    verify_membership,
    verify_non_membership,
)

# Hashed 32-byte keys, like the provable stores use.
keys = st.binary(min_size=1, max_size=8).map(lambda b: hashlib.sha256(b).digest())
values = st.binary(min_size=0, max_size=64)
entries = st.dictionaries(keys, values, min_size=0, max_size=40)


@given(entries)
def test_trie_behaves_as_map(mapping):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    for k, v in mapping.items():
        assert trie.get(k) == v
    assert dict(trie.items()) == mapping


@given(entries)
def test_root_independent_of_insertion_order(mapping):
    a = SealableTrie()
    b = SealableTrie()
    items = list(mapping.items())
    for k, v in items:
        a.set(k, v)
    for k, v in reversed(items):
        b.set(k, v)
    assert a.root_hash == b.root_hash


@given(entries, keys, values)
def test_root_is_binding(mapping, extra_key, extra_value):
    """Tries with different contents have different roots."""
    a = SealableTrie()
    for k, v in mapping.items():
        a.set(k, v)
    b = SealableTrie()
    for k, v in mapping.items():
        b.set(k, v)
    changed = extra_key not in mapping or mapping[extra_key] != extra_value
    b.set(extra_key, extra_value)
    if changed:
        assert a.root_hash != b.root_hash
    else:
        assert a.root_hash == b.root_hash


@given(st.dictionaries(keys, values, min_size=1, max_size=40))
def test_membership_proofs_verify(mapping):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    root = trie.root_hash
    for k in mapping:
        proof = trie.prove(k)
        assert verify_membership(root, proof)
        # Wire round-trip preserves validity.
        assert verify_membership(root, MembershipProof.from_bytes(proof.to_bytes()))


@given(st.dictionaries(keys, values, min_size=1, max_size=40), keys)
def test_absence_proofs_verify(mapping, probe):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    if probe in mapping:
        return
    proof = trie.prove_absence(probe)
    assert verify_non_membership(trie.root_hash, proof)


@given(st.dictionaries(keys, values, min_size=2, max_size=40), st.data())
def test_proof_value_tampering_detected(mapping, data):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    k = data.draw(st.sampled_from(sorted(mapping)))
    proof = trie.prove(k)
    tampered_value = data.draw(values.filter(lambda v: v != mapping[k]))
    forged = MembershipProof(
        key=proof.key, value=tampered_value, steps=proof.steps, leaf_path=proof.leaf_path,
    )
    assert not verify_membership(trie.root_hash, forged)


@given(st.dictionaries(keys, values, min_size=2, max_size=40), st.data())
def test_proof_cannot_be_transplanted(mapping, data):
    """A proof for key A never verifies as a proof for key B."""
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    ks = sorted(mapping)
    a = data.draw(st.sampled_from(ks))
    b = data.draw(st.sampled_from([k for k in ks if k != a]))
    proof = trie.prove(a)
    forged = MembershipProof(
        key=b, value=proof.value, steps=proof.steps, leaf_path=proof.leaf_path,
    )
    assert not verify_membership(trie.root_hash, forged)


@given(st.dictionaries(keys, values, min_size=1, max_size=30), st.data())
@settings(max_examples=50)
def test_sealing_preserves_root_and_blocks_access(mapping, data):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    root = trie.root_hash
    to_seal = data.draw(st.lists(st.sampled_from(sorted(mapping)), unique=True))
    for k in to_seal:
        trie.seal(k)
        assert trie.root_hash == root
    for k in to_seal:
        try:
            trie.get(k)
            raise AssertionError("sealed key must not be readable")
        except SealedNodeError:
            pass
        except KeyNotFoundError:
            raise AssertionError("sealed key must raise SealedNodeError")
    # Unsealed siblings are untouched unless their path crosses a sealed
    # subtree — with hashed keys that cannot happen for distinct keys.
    for k, v in mapping.items():
        if k not in to_seal:
            assert trie.get(k) == v


@given(st.dictionaries(keys, values, min_size=1, max_size=30), st.data())
@settings(max_examples=50)
def test_delete_then_reinsert_restores_root(mapping, data):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    root = trie.root_hash
    k = data.draw(st.sampled_from(sorted(mapping)))
    trie.delete(k)
    assert not trie.contains(k)
    trie.set(k, mapping[k])
    assert trie.root_hash == root


@given(entries)
def test_empty_after_deleting_everything(mapping):
    trie = SealableTrie()
    for k, v in mapping.items():
        trie.set(k, v)
    for k in mapping:
        trie.delete(k)
    assert trie.root_hash == Hash.zero()
    assert trie.node_count() == 0
