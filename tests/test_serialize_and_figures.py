"""Tests for trie snapshots (dump/load) and the ASCII figure renderers."""

import hashlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SealedNodeError, TrieError
from repro.metrics.figures import cdf, histogram
from repro.trie import SealableTrie, verify_membership
from repro.trie.serialize import dump_trie, load_trie


def key(i: int) -> bytes:
    return hashlib.sha256(f"snap-{i}".encode()).digest()


class TestTrieSnapshots:
    def test_empty_roundtrip(self):
        trie = SealableTrie()
        restored = load_trie(dump_trie(trie))
        assert restored.root_hash == trie.root_hash
        assert restored.is_empty()

    def test_populated_roundtrip(self):
        trie = SealableTrie()
        for i in range(200):
            trie.set(key(i), f"value-{i}".encode())
        restored = load_trie(dump_trie(trie))
        assert restored.root_hash == trie.root_hash
        for i in range(200):
            assert restored.get(key(i)) == f"value-{i}".encode()

    def test_sealed_stubs_survive(self):
        prefix = hashlib.sha256(b"snap-chan").digest()[:24]
        trie = SealableTrie()
        for seq in range(10):
            trie.set(prefix + seq.to_bytes(8, "big"), b"receipt")
        for seq in range(8):
            trie.seal(prefix + seq.to_bytes(8, "big"))
        restored = load_trie(dump_trie(trie))
        assert restored.root_hash == trie.root_hash
        # Sealed entries stay sealed after the round trip (replay guard
        # survives snapshot/restore).
        with pytest.raises(SealedNodeError):
            restored.get(prefix + (0).to_bytes(8, "big"))
        assert restored.get(prefix + (9).to_bytes(8, "big")) == b"receipt"

    def test_canonical_encoding(self):
        a, b = SealableTrie(), SealableTrie()
        for i in range(50):
            a.set(key(i), b"v")
        for i in reversed(range(50)):
            b.set(key(i), b"v")
        assert dump_trie(a) == dump_trie(b)

    def test_proofs_from_restored_trie(self):
        trie = SealableTrie()
        for i in range(40):
            trie.set(key(i), b"v")
        restored = load_trie(dump_trie(trie))
        proof = restored.prove(key(7))
        assert verify_membership(trie.root_hash, proof)

    def test_mutating_restored_trie_works(self):
        trie = SealableTrie()
        trie.set(key(1), b"v")
        restored = load_trie(dump_trie(trie))
        restored.set(key(2), b"w")
        restored.delete(key(1))
        assert restored.get(key(2)) == b"w"

    def test_garbage_rejected(self):
        with pytest.raises((TrieError, ValueError)):
            load_trie(b"\x42\x00\x01")
        with pytest.raises((TrieError, ValueError)):
            load_trie(dump_trie_with_trailing())

    @given(st.dictionaries(
        st.binary(min_size=1, max_size=6).map(lambda b: hashlib.sha256(b).digest()),
        st.binary(max_size=32), max_size=30,
    ))
    def test_roundtrip_property(self, mapping):
        trie = SealableTrie()
        for k, v in mapping.items():
            trie.set(k, v)
        restored = load_trie(dump_trie(trie))
        assert restored.root_hash == trie.root_hash
        assert dict(restored.items()) == mapping


def dump_trie_with_trailing():
    trie = SealableTrie()
    trie.set(key(0), b"v")
    return dump_trie(trie) + b"extra"


class TestAsciiFigures:
    def test_histogram_shape(self):
        text = histogram([1.0] * 90 + [10.0] * 10, bins=5, width=20)
        lines = text.splitlines()
        assert len(lines) == 5
        assert lines[0].count("#") == 20      # dominant first bin
        assert lines[-1].count("#") >= 1      # tail still visible
        assert lines[0].rstrip().endswith("90")

    def test_histogram_log_counts_compresses(self):
        linear = histogram([1.0] * 1000 + [10.0], bins=2, width=40)
        logged = histogram([1.0] * 1000 + [10.0], bins=2, width=40, log_counts=True)
        assert logged.splitlines()[1].count("#") > linear.splitlines()[1].count("#")

    def test_histogram_empty_raises(self):
        with pytest.raises(ValueError):
            histogram([])

    def test_histogram_constant_data(self):
        text = histogram([5.0, 5.0, 5.0], bins=3)
        assert "3" in text

    def test_cdf_monotone_and_complete(self):
        text = cdf(list(range(100)), points=8, width=20)
        shares = [float(line.split()[-1].rstrip("%")) for line in text.splitlines()]
        assert shares == sorted(shares)
        assert shares[-1] == 100.0

    def test_cdf_markers_flagged(self):
        text = cdf([1.0, 2.0, 3.0, 4.0], markers=[2.5])
        assert "<-" in text

    def test_cdf_empty_raises(self):
        with pytest.raises(ValueError):
            cdf([])
