"""Regression: a timeout on hop 2 refunds hop 1 exactly once.

Two layers of coverage.  The protocol-level tests pin the exactly-once
mechanics (the commitment deletion makes a second timeout, a late
delivery, and a replayed unwind all impossible).  The full-stack test
reuses the ``repro.chaos`` relayer-crash fault against the sibling
relayer carrying hop 2, proving the refund also lands exactly once when
the relayer loses all volatile state mid-flight and rebuilds from
on-chain history.
"""

from dataclasses import replace

import pytest

from repro.chaos import ChaosInjector, FaultPlan
from repro.guest.config import GuestConfig
from repro.errors import PacketError, ReproError
from repro.fabric import TopologyConfig, build_fabric
from repro.fabric.conservation import ConservationChecker
from repro.fabric.forward import forward_receiver

from tests.helpers import ProtoFabric


def _three_chain():
    fabric = ProtoFabric()
    fabric.add_chain("a")
    fabric.add_chain("m", forwarding=True, hop_timeout_seconds=600.0)
    fabric.add_chain("b")
    fabric.link("a", "m")
    fabric.link("m", "b")
    return fabric


def _expire_hop2(fabric):
    """Send a 300-token 2-hop transfer, drop the onward hop, expire it.
    Returns the dropped onward packet."""
    a, m = fabric.chains["a"], fabric.chains["m"]
    a.bank.mint("alice", "uatom", 300)
    receiver = forward_receiver(
        [("transfer", str(fabric.channels[("m", "b")]))], "bob")
    a.send_transfer(fabric.channels[("a", "m")], "uatom", 300,
                    "alice", receiver)
    dropped = []
    fabric.pump(drop=lambda src, p: src is m and not dropped
                and (dropped.append(p) or True))
    fabric.now += m.forward.hop_timeout_seconds + 100.0
    fabric.expire(m, dropped[0])
    return dropped[0]


class TestExactlyOnceMechanics:
    def test_second_timeout_submission_rejected_on_chain(self):
        fabric = _three_chain()
        m = fabric.chains["m"]
        onward = _expire_hop2(fabric)
        fabric.pump()  # the unwind return transfer reaches alice
        assert fabric.chains["a"].bank.balance("alice", "uatom") == 300
        assert m.forward.unwinds == 1
        # A crashed-and-restarted relayer replaying the same timeout is
        # refused: the packet commitment was deleted by the first one.
        with pytest.raises(PacketError, match="no outstanding commitment"):
            fabric.expire(m, onward)
        assert fabric.chains["a"].bank.balance("alice", "uatom") == 300
        assert m.forward.unwinds == 1

    def test_late_delivery_after_timeout_rejected(self):
        fabric = _three_chain()
        m = fabric.chains["m"]
        onward = _expire_hop2(fabric)
        fabric.pump()
        # A redelivery attempt of the expired onward packet (the other
        # replay a restarted relayer can make) also fails on-chain.
        with pytest.raises(ReproError):
            fabric.deliver(m, onward)
        assert fabric.chains["b"].bank.total_supply(
            f"transfer/{fabric.channels[('b', 'm')]}/"
            f"transfer/{fabric.channels[('m', 'a')]}/uatom") == 0
        assert fabric.chains["a"].bank.balance("alice", "uatom") == 300
        checker = ConservationChecker(
            {name: chain.bank for name, chain in fabric.chains.items()})
        assert checker.check().ok

    def test_unwind_return_transfer_not_replayable(self):
        fabric = _three_chain()
        a, m = fabric.chains["a"], fabric.chains["m"]
        _expire_hop2(fabric)
        # Capture the unwind return packet instead of delivering it.
        unwind = []
        fabric.pump(drop=lambda src, p: src is m
                    and (unwind.append(p) or True))
        assert len(unwind) == 1
        fabric.deliver(m, unwind[0])
        assert a.bank.balance("alice", "uatom") == 300
        # Exactly-once on the refund leg too: the receipt seals it.
        with pytest.raises(ReproError):
            fabric.deliver(m, unwind[0])
        assert a.bank.balance("alice", "uatom") == 300


class TestCrashRestartRefund:
    """Full-stack: hop 2 rides the g0—g1 sibling link; the sibling
    relayer crashes before delivering, stays down past the hop deadline,
    and must cancel the expired send exactly once after rebuilding."""

    @pytest.fixture(scope="class")
    def wreck(self):
        # A short block-production heartbeat (Δ) so the destination
        # chain keeps finalising empty blocks while idle — the timeout
        # is only provable once a finalised g1 block passes the
        # deadline (there is no traffic on g1 to advance it otherwise).
        heartbeat = GuestConfig(delta_seconds=240.0)
        base = TopologyConfig.chain_of(
            ("cp-a", "g0", "g1", "cp-b"), seed=47,
            hop_timeout_seconds=240.0)
        dep = build_fabric(replace(base, guests=tuple(
            replace(g, config=heartbeat) for g in base.guests)))
        cp_a = dep.counterparties["cp-a"]
        cp_a.bank.mint("alice", "uatom", 1_000_000)
        checker = dep.conservation_checker()

        # Point the chaos relayer hook at the hop-2 relayer, then take
        # it down before it can deliver and keep it down well past the
        # 240 s hop deadline.  A second, later crash checks that the
        # restart's history replay cannot re-run the refund.
        sibling = dep.link_between("g0", "g1").relayer
        dep.relayer = sibling
        plan = (FaultPlan(label="hop2-crash")
                .add("relayer_crash", at=5.0, duration=900.0)
                .add("relayer_crash", at=2200.0, duration=60.0))
        ChaosInjector(dep, plan).arm()

        dep.send_along("path", "alice", "bob", "uatom", 4_321)
        dep.run_for(3_000.0)
        return dep, checker, sibling

    def test_origin_sender_refunded_exactly_once(self, wreck):
        dep, checker, sibling = wreck
        cp_a = dep.counterparties["cp-a"]
        assert cp_a.bank.balance("alice", "uatom") == 1_000_000
        # The refund is a real unwind, not a never-sent packet: hop 1
        # completed and the forwarding middleware reversed it.
        g0 = dep.guests["g0"].contract
        assert g0.forward.forwards_started == 1
        assert g0.forward.unwinds == 1
        assert not g0.forward._forwards

    def test_timeout_cancelled_once_despite_two_crashes(self, wreck):
        dep, checker, sibling = wreck
        assert sibling.metrics.crashes == 2
        assert sibling.metrics.timeouts_cancelled == 1
        assert sum(len(o) for o in sibling._outstanding.values()) == 0

    def test_nothing_reached_the_far_side(self, wreck):
        dep, checker, sibling = wreck
        g1 = dep.guests["g1"].contract
        cp_b = dep.counterparties["cp-b"]
        assert all(denom.split("/")[-1] != "uatom"
                   for (_, denom) in g1.bank.balances())
        assert all(addr != "bob" for (addr, _) in cp_b.bank.balances())

    def test_conservation_after_the_wreck(self, wreck):
        dep, checker, sibling = wreck
        report = checker.check()
        assert report.ok, report.failures
