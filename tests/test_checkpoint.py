"""The checkpoint subsystem: codec, registry, manifest, file format.

The heavyweight guarantee — restore + replay is bit-identical — lives
in ``test_replay_audit.py``; these tests pin the machinery underneath:
closure serialization (shared values, recursive cycles, deep chains),
the callback registry's snapshot-time validation, manifest auditing on
restore, the binary container, and the rewindable id mints.
"""

import pickle

import pytest

from repro import Deployment, DeploymentConfig
from repro import ids
from repro.checkpoint import (
    PYTHON_TAG,
    Checkpoint,
    CheckpointError,
    dumps_world,
    loads_world,
    restore_world,
    snapshot_world,
    validation_errors,
)
from repro.checkpoint.snapshot import CheckpointManifest, world_roots
from repro.guest.config import GuestConfig
from repro.validators.profiles import simple_profiles


def small_config(seed=71, delta=120.0, **kw):
    return DeploymentConfig(
        seed=seed,
        guest=GuestConfig(delta_seconds=delta, min_stake_lamports=1),
        profiles=simple_profiles(4),
        **kw,
    )


def roundtrip(obj):
    return loads_world(dumps_world(obj))


# ----------------------------------------------------------------------
# Codec: closures
# ----------------------------------------------------------------------


def make_counter(start):
    count = {"value": start}

    def bump(step=1):
        count["value"] += step
        return count["value"]

    def read():
        return count["value"]

    return bump, read


class TestClosureCodec:
    def test_closure_roundtrip_keeps_captured_state(self):
        bump, _ = make_counter(10)
        bump()
        restored = roundtrip(bump)
        assert restored() == 12
        assert restored(5) == 17

    def test_two_closures_share_one_captured_object(self):
        bump, read = make_counter(0)
        bump2, read2 = roundtrip((bump, read))
        bump2()
        bump2()
        assert read2() == 2  # both closures see the one restored dict

    def test_recursive_closure_cycle(self):
        # A closure whose cell contains itself (the guest API's ``pump``
        # pattern) must terminate through the pickle memo.
        def make_pump():
            state = {"calls": 0}

            def pump(n):
                state["calls"] += 1
                if n > 0:
                    return pump(n - 1)
                return state["calls"]

            return pump

        restored = roundtrip(make_pump())
        assert restored(4) == 5

    def test_deep_closure_chain(self):
        # Continuation chains grow thousands of links under congestion;
        # the codec runs on a big-stack thread so this must just work.
        def link(nxt):
            def step():
                return 1 + (nxt() if nxt is not None else 0)

            return step

        chain = None
        for _ in range(5_000):
            chain = link(chain)
        restored = roundtrip(chain)
        # Calling 5000 deep would blow the *test's* stack; walk the
        # restored cells instead and check every link survived.
        depth = 0
        while restored is not None:
            depth += 1
            restored = restored.__closure__[0].cell_contents
        assert depth == 5_000

    def test_lambda_and_defaults(self):
        offset = 3
        fn = lambda x, y=10, *, z=2: x + y + z + offset  # noqa: E731
        restored = roundtrip(fn)
        assert restored(1) == 16
        assert restored(1, y=0, z=0) == 4

    def test_module_level_function_by_reference(self):
        assert roundtrip(make_counter) is make_counter

    def test_plain_pickle_still_refuses_closures(self):
        bump, _ = make_counter(0)
        with pytest.raises(Exception):
            pickle.dumps(bump)

    def test_python_tag_guard(self):
        payload = dumps_world({"x": 1})
        assert loads_world(payload, python_tag=PYTHON_TAG) == {"x": 1}
        with pytest.raises(CheckpointError, match="Python"):
            loads_world(payload, python_tag="2.7")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class _ForeignActor:
    def poke(self):
        pass


class TestRegistry:
    def test_repro_closures_and_methods_pass(self):
        deployment = Deployment(small_config())
        assert validation_errors(
            handle.callback for _, handle in deployment.sim.iter_pending()
        ) == []

    def test_builtin_container_method_passes(self):
        fired = []
        assert validation_errors([fired.append]) == []

    def test_foreign_closure_is_named_in_the_error(self):
        # This test module is not a registered namespace, so a closure
        # minted here must fail validation with a pointed message.
        def local_closure():
            pass

        problems = validation_errors([local_closure])
        assert len(problems) == 1
        assert "local_closure" in problems[0]

    def test_foreign_actor_method_fails_then_registers(self):
        from repro.checkpoint import register_actor

        actor = _ForeignActor()
        assert validation_errors([actor.poke])
        try:
            register_actor(_ForeignActor)
            assert validation_errors([actor.poke]) == []
        finally:
            from repro.checkpoint import registry

            registry._ACTOR_CLASSES.discard(_ForeignActor)


# ----------------------------------------------------------------------
# Snapshot / restore / container
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def live_world():
    """A linked deployment with a little traffic in flight."""
    deployment = Deployment(small_config())
    channels = deployment.establish_link()
    deployment.run_for(60.0)
    return deployment, channels


class TestSnapshotRestore:
    def test_manifest_matches_world(self, live_world):
        deployment, _ = live_world
        checkpoint = snapshot_world(deployment, label="unit")
        manifest = checkpoint.manifest
        assert manifest.label == "unit"
        assert manifest.seed == deployment.config.seed
        assert manifest.sim_now == deployment.sim.now
        assert manifest.store_roots == world_roots(deployment)

    def test_restore_passes_audit_and_preserves_roots(self, live_world):
        deployment, _ = live_world
        checkpoint = snapshot_world(deployment)
        restored, extras = restore_world(checkpoint)
        assert extras == {}
        assert world_roots(restored) == world_roots(deployment)
        assert restored.sim.now == deployment.sim.now
        assert restored.sim.pending_events() == deployment.sim.pending_events()

    def test_tampered_manifest_fails_audit(self, live_world):
        deployment, _ = live_world
        checkpoint = snapshot_world(deployment)
        import dataclasses

        bent = Checkpoint(
            manifest=dataclasses.replace(checkpoint.manifest,
                                         sim_now=checkpoint.manifest.sim_now + 1.0),
            payload=checkpoint.payload,
        )
        with pytest.raises(CheckpointError, match="sim_now"):
            restore_world(bent)

    def test_file_container_roundtrip(self, live_world, tmp_path):
        deployment, _ = live_world
        checkpoint = snapshot_world(deployment, label="disk")
        path = str(tmp_path / "world.ckpt")
        checkpoint.save(path)
        loaded = Checkpoint.load(path)
        assert loaded.manifest == checkpoint.manifest
        assert loaded.payload == checkpoint.payload

    def test_bad_magic_and_schema_are_rejected(self, live_world):
        deployment, _ = live_world
        data = snapshot_world(deployment).to_bytes()
        with pytest.raises(CheckpointError, match="magic"):
            Checkpoint.from_bytes(b"NOPE" + data[4:])
        with pytest.raises(CheckpointError, match="schema"):
            Checkpoint.from_bytes(data[:4] + bytes([250]) + data[5:])

    def test_manifest_json_roundtrip(self, live_world):
        deployment, _ = live_world
        manifest = snapshot_world(deployment).manifest
        assert CheckpointManifest.from_json(manifest.to_json()) == manifest


# ----------------------------------------------------------------------
# Rewindable id mints
# ----------------------------------------------------------------------


class TestMints:
    def test_mint_counts_and_rewinds(self):
        mint = ids.Mint(5)
        assert next(mint) == 5
        assert next(mint) == 6
        assert mint.peek() == 7
        mint.rewind(5)
        assert next(mint) == 5

    def test_restore_rewinds_global_mints(self, live_world):
        deployment, _ = live_world
        checkpoint = snapshot_world(deployment)
        tx_mint = ids.mint("host.tx")
        before = tx_mint.peek()
        next(tx_mint)
        next(tx_mint)
        restore_world(checkpoint)
        assert tx_mint.peek() == before

    def test_unknown_mint_names_are_ignored(self):
        ids.rewind_mints({"no-such-mint": 99})
