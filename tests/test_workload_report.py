"""Unit tests for :meth:`WorkloadEngine.report` percentile handling.

Regression coverage for two hot-path fixes: the engine's private
nearest-rank percentile copy was deleted in favour of the library-wide
linear-interpolated :func:`repro.metrics.stats.percentile` (the two
silently disagreed between samples), and ``report()`` now sorts the
latency list once instead of once per percentile.  The tests drive
``report()`` directly on a skeleton engine — the percentile path needs
no deployment underneath it.
"""

from types import SimpleNamespace

from repro.metrics import stats
from repro.workload import WorkloadEngine, WorkloadSpec
from repro.workload import engine as engine_module


def make_engine(latencies, delivered=None):
    """A bare engine with just the state ``report()`` reads."""
    engine = WorkloadEngine.__new__(WorkloadEngine)
    engine.dep = SimpleNamespace(relayer=SimpleNamespace(
        ledger=SimpleNamespace(by_category={"relay": 700}, transactions={"relay": 7}),
    ))
    engine.spec = WorkloadSpec()
    engine.latencies = list(latencies)
    engine.sent = engine.committed = len(latencies)
    engine.delivered = len(latencies) if delivered is None else delivered
    engine.send_failures = 0
    engine._started_at = 0.0
    engine._last_delivery_at = float(len(latencies))
    engine._fee_baseline = 0
    engine._tx_baseline = 0
    return engine


def test_engine_uses_the_library_percentile():
    """One percentile convention repo-wide: the engine's old
    nearest-rank copy is gone and the stats one is imported instead."""
    assert engine_module.percentile is stats.percentile


def test_report_percentiles_are_linear_interpolated():
    # Unsorted on purpose: report() must sort before interpolating.
    # Nearest-rank would return an element of the list (2.0 or 3.0);
    # linear interpolation lands exactly between.
    report = make_engine([4.0, 1.0, 3.0, 2.0]).report()
    assert report.latency_p50 == stats.percentile([1.0, 2.0, 3.0, 4.0], 0.50) == 2.5
    assert report.latency_p95 == stats.percentile([1.0, 2.0, 3.0, 4.0], 0.95)
    assert report.latency_p99 == stats.percentile([1.0, 2.0, 3.0, 4.0], 0.99)
    assert report.latency_p50 <= report.latency_p95 <= report.latency_p99


def test_report_does_not_mutate_the_latency_list():
    engine = make_engine([4.0, 1.0, 3.0, 2.0])
    engine.report()
    assert engine.latencies == [4.0, 1.0, 3.0, 2.0]


def test_report_with_no_deliveries_zeroes_percentiles():
    """stats.percentile raises on empty input; report() must guard and
    return zeros rather than blow up on an all-lost run."""
    report = make_engine([]).report()
    assert report.latency_p50 == report.latency_p95 == report.latency_p99 == 0.0
    assert report.sustained_pps == 0.0
    assert report.fee_lamports_per_packet == 0.0


def test_report_single_sample():
    report = make_engine([7.0]).report()
    assert report.latency_p50 == report.latency_p99 == 7.0
