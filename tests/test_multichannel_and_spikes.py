"""Multi-channel operation and congestion-spike resilience.

IBC multiplexes independent packet streams over one connection (§III-A:
channels are ⟨name, port⟩ pairs).  These tests open a second channel
over the established connection and verify stream isolation — plus a
resilience check: traffic submitted during a forced congestion spike
eventually lands and completes.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.host.chain import HostConfig
from repro.ibc.identifiers import PortId
from repro.validators.profiles import simple_profiles


class TestMultiChannel:
    @pytest.fixture(scope="class")
    def two_channels(self):
        dep = Deployment(DeploymentConfig(
            seed=91,
            guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
            profiles=simple_profiles(4),
        ))
        first = dep.establish_link()

        second = {}
        dep.relayer.open_channel(
            PortId("transfer"), PortId("transfer"),
            lambda g, c: second.update(guest=g, cp=c),
        )
        deadline = dep.sim.now + 3_600.0
        while "cp" not in second and dep.sim.now < deadline:
            dep.sim.step()
        assert "cp" in second, "second channel failed to open"
        return dep, first, (second["guest"], second["cp"])

    def test_distinct_channel_ids(self, two_channels):
        dep, (g1, c1), (g2, c2) = two_channels
        assert g1 != g2
        assert c1 != c2

    def test_independent_sequence_spaces(self, two_channels):
        dep, (g1, _), (g2, _) = two_channels
        dep.contract.bank.mint("alice", "GUEST", 1_000)
        for channel in (g1, g2, g1):
            payload = dep.contract.transfer.make_payload(channel, "GUEST", 10, "alice", "bob")
            dep.user_api.send_packet("transfer", str(channel), payload)
        dep.run_for(60.0)
        seqs = dep.contract.ibc._next_seq_send
        assert seqs[(PortId("transfer"), g1)] == 2
        assert seqs[(PortId("transfer"), g2)] == 1

    def test_transfers_complete_on_both_channels(self, two_channels):
        dep, (g1, c1), (g2, c2) = two_channels
        dep.run_for(300.0)  # drain the sends from the previous test
        voucher1 = dep.counterparty.transfer.voucher_denom(c1, "GUEST")
        voucher2 = dep.counterparty.transfer.voucher_denom(c2, "GUEST")
        assert dep.counterparty.bank.balance("bob", voucher1) == 20
        assert dep.counterparty.bank.balance("bob", voucher2) == 10

    def test_channel_escrows_isolated(self, two_channels):
        dep, (g1, _), (g2, _) = two_channels
        escrow1 = dep.contract.transfer.escrow_address(g1)
        escrow2 = dep.contract.transfer.escrow_address(g2)
        assert escrow1 != escrow2
        assert dep.contract.bank.balance(escrow1, "GUEST") == 20
        assert dep.contract.bank.balance(escrow2, "GUEST") == 10


class TestCongestionSpikes:
    def test_traffic_survives_a_spike(self):
        """Sends submitted during a full-on congestion spike still land
        (slowly), and the end-to-end transfer completes — no transaction
        is ever dropped, only delayed (§VI-B's long-tail observation)."""
        dep = Deployment(DeploymentConfig(
            seed=92,
            guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
            host=HostConfig(spike_probability=0.0, base_congestion=0.3),
            profiles=simple_profiles(4),
        ))
        guest_chan, cp_chan = dep.establish_link()

        # Force a spike by pinning the congestion cache for hour 0-1.
        dep.host._spike_cache.clear()
        current_hour = int(dep.sim.now // 3600)
        for hour in (current_hour, current_hour + 1):
            dep.host._spike_cache[hour] = True
        dep.host.config.spike_congestion = 0.95

        dep.contract.bank.mint("alice", "GUEST", 100)
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 60, "alice", "bob")
        latency = {}
        submit_time = dep.sim.now
        dep.user_api.send_packet(
            "transfer", str(guest_chan), payload,
            on_result=lambda r: latency.update(landed=r.time - submit_time, ok=r.success),
        )
        dep.run_for(600.0)

        assert latency.get("ok")
        voucher = dep.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
        assert dep.counterparty.bank.balance("bob", voucher) == 60
        # The base-fee send felt the spike: visibly slower than calm-chain
        # sub-second landings.
        assert latency["landed"] > 1.0
