"""Traffic across live epoch rotations (§III-B end to end).

Short epochs force several validator-set rotations mid-run while
transfers keep flowing: the contract must rotate sets at the configured
host-block cadence, newly staked validators must start signing, and the
counterparty's guest light client must follow the epoch chain (including
skipped epochs — Alg. 2 only relays blocks with content).
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.guest.config import GuestConfig
from repro.units import sol_to_lamports
from repro.validators.profiles import simple_profiles


@pytest.fixture(scope="module")
def rotating():
    dep = Deployment(DeploymentConfig(
        seed=141,
        guest=GuestConfig(
            delta_seconds=90.0,
            min_stake_lamports=1,
            epoch_length_host_blocks=500,   # a 200 s epoch at 0.4 s slots
        ),
        profiles=simple_profiles(4),
    ))
    guest_chan, cp_chan = dep.establish_link()
    dep.contract.bank.mint("alice", "GUEST", 10 ** 9)

    # A newcomer stakes mid-run and should enter a later epoch.
    newcomer = dep.scheme.keypair_from_seed(bytes([55]) * 32)
    dep.user_api.stake(newcomer.public_key, sol_to_lamports(150.0))

    # Send a transfer roughly once per epoch for five epochs.
    for _ in range(5):
        payload = dep.contract.transfer.make_payload(guest_chan, "GUEST", 7, "alice", "bob")
        dep.user_api.send_packet("transfer", str(guest_chan), payload)
        dep.run_for(220.0)
    dep.run_for(200.0)
    return dep, guest_chan, cp_chan, newcomer


class TestEpochRotation:
    def test_multiple_epochs_elapsed(self, rotating):
        dep, *_ = rotating
        assert dep.contract.current_epoch.epoch_id >= 3

    def test_rotation_cadence_matches_config(self, rotating):
        dep, *_ = rotating
        # Epoch boundaries are marked by last_in_epoch blocks.
        boundaries = [b for b in dep.contract.blocks if b.header.last_in_epoch]
        assert len(boundaries) >= 3
        for earlier, later in zip(boundaries, boundaries[1:]):
            slots = later.header.host_slot - earlier.header.host_slot
            assert slots >= 500  # the configured minimum epoch length

    def test_newcomer_joined_a_later_epoch(self, rotating):
        dep, _, _, newcomer = rotating
        assert dep.contract.current_epoch.is_validator(newcomer.public_key)
        assert not dep.contract.epochs[0].is_validator(newcomer.public_key)

    def test_transfers_completed_across_rotations(self, rotating):
        dep, guest_chan, cp_chan, _ = rotating
        voucher = dep.counterparty.transfer.voucher_denom(cp_chan, "GUEST")
        assert dep.counterparty.bank.balance("bob", voucher) == 5 * 7
        assert dep.contract.ibc.counters.packets_acknowledged == 5

    def test_cp_client_followed_the_epochs(self, rotating):
        dep, *_ = rotating
        # The counterparty's guest client ended on a recent epoch (it may
        # lag by the blocks that were never relayed, but not by all).
        assert dep.guest_client.epoch.epoch_id >= 1
        assert not dep.guest_client.frozen

    def test_blocks_finalised_by_their_own_epochs(self, rotating):
        dep, *_ = rotating
        for block in dep.contract.blocks[1:]:
            if not block.finalised:
                continue
            epoch = dep.contract.epochs[block.header.epoch_id]
            assert epoch.has_quorum(block.signer_set()), block

    def test_rewards_flowed_in_every_active_epoch(self, rotating):
        dep, *_ = rotating
        assert sum(dep.contract.reward_balances.values()) > 0
