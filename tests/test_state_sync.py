"""Snapshot state-sync (docs/STATE.md).

A joiner that bootstraps from a sealed-trie snapshot of a finalized
height — verified against the guest light client's committed state
root — must be indistinguishable from a node that replayed the full
history: bit-identical roots, bit-identical serialized stores, and
bit-identical membership proofs for every key it serves.  Covered here:

* journal mechanics on a bare store (watermarks, lockstep mirrors);
* deployment-level joins across three seeds, against a ``full_replay``
  baseline that followed the whole run live;
* a join performed in the middle of a fault storm (reusing the
  ``repro.chaos`` plan machinery);
* every refusal path: unfinalized height, missing watermark, snapshot
  root mismatch, double journal attach.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.chaos import ChaosInjector, FaultPlan
from repro.crypto.hashing import Hash
from repro.errors import GuestError, ReproError
from repro.guest.config import GuestConfig
from repro.ibc import commitment as paths
from repro.state import ReplayMirror, StateJournal, SyncedReplica
from repro.state.sync import StateSyncError, TrieOp
from repro.trie.serialize import dump_store, load_store
from repro.trie.store import ProvableStore
from repro.validators.profiles import simple_profiles


def make_dep(seed, validators=4, **kw):
    kw.setdefault("with_fisherman", True)
    return Deployment(DeploymentConfig(
        seed=seed,
        guest=GuestConfig(delta_seconds=90.0, min_stake_lamports=1),
        profiles=simple_profiles(validators),
        **kw,
    ))


def attach_journal(dep):
    """Attach a journal right after construction, before any traffic.

    Genesis itself predates the attach, so height 0 has no watermark —
    joins must use a height generated afterwards, which is every height
    the relayer ever finalizes during the test.
    """
    journal = StateJournal()
    dep.contract.attach_state_journal(journal)
    return journal


def send_cp_transfers(dep, cp_chan, count, amount=5):
    """Counterparty -> guest ICS-20 sends (become receipts on the guest)."""
    def send():
        data = dep.counterparty.transfer.make_payload(
            cp_chan, "PICA", amount, "carol", "dave")
        dep.counterparty.ibc.send_packet(
            dep.counterparty.transfer_port, cp_chan, data, 0.0)

    for _ in range(count):
        dep.counterparty.submit(send)


def receipt_proofs(store, prefix, upper=64):
    """Serialized membership proofs for every provable receipt."""
    proofs = {}
    for seq in range(1, upper):
        try:
            proofs[seq] = store.prove_seq(prefix, seq).to_bytes()
        except ReproError:
            continue
    return proofs


def finalized_join_height(dep, journal):
    height = dep.guest_client.latest_height()
    assert height > 0, "no finalized guest blocks yet"
    assert dep.guest_client.consensus_root(height) is not None
    assert journal.watermark(height) >= 0
    return height


# ----------------------------------------------------------------------
# Journal + mirror mechanics on a bare store
# ----------------------------------------------------------------------


class TestJournalMechanics:
    def test_mirror_keeps_replica_in_lockstep(self):
        source = ProvableStore()
        replica = SyncedReplica.full_replay(source)
        for i in range(40):
            source.set_seq("receipts/c", i, b"\x01")
            source.set_seq("commitments/c", i, i.to_bytes(4, "big"))
            if i >= 2:
                source.seal_seq("receipts/c", i - 2)
            if i >= 5:
                source.delete_seq("commitments/c", i - 5)
            assert bytes(replica.root_hash) == bytes(source.root_hash)
        assert dump_store(replica.store) == dump_store(source)

    def test_full_replay_clones_mid_run_state(self):
        source = ProvableStore()
        source.set("a/b", b"early")
        source.set("a/c", b"also-early")
        source.seal("a/c")
        replica = SyncedReplica.full_replay(source)
        assert bytes(replica.root_hash) == bytes(source.root_hash)
        source.set("a/d", b"late")
        assert bytes(replica.root_hash) == bytes(source.root_hash)

    def test_detach_stops_mirroring(self):
        source = ProvableStore()
        replica = SyncedReplica.full_replay(source)
        source.set("k/1", b"v")
        assert bytes(replica.root_hash) == bytes(source.root_hash)
        replica.detach(source.trie)
        source.set("k/2", b"v")
        assert bytes(replica.root_hash) != bytes(source.root_hash)

    def test_watermark_replay_reproduces_marked_state(self):
        source = ProvableStore()
        journal = StateJournal()
        source.trie.attach_mirror(journal)
        roots = {}
        for height in range(1, 6):
            source.set_seq("acks/c", height, height.to_bytes(2, "big"))
            if height >= 2:
                source.seal_seq("acks/c", height - 1)
            journal.mark_height(height)
            roots[height] = bytes(source.root_hash)
        for height, root in roots.items():
            rebuilt = ProvableStore()
            mirror = ReplayMirror(rebuilt)
            for op in journal.ops[:journal.watermark(height)]:
                mirror.on_op(op.kind, op.key, op.value)
            assert bytes(rebuilt.root_hash) == root

    def test_missing_watermark_raises(self):
        journal = StateJournal()
        with pytest.raises(StateSyncError, match="no watermark"):
            journal.watermark(7)

    def test_ops_are_recorded_in_order_with_kinds(self):
        source = ProvableStore()
        journal = StateJournal()
        source.trie.attach_mirror(journal)
        source.set("x/1", b"a")
        source.set("x/2", b"b")
        source.seal("x/1")
        source.delete("x/2")
        assert [op.kind for op in journal.ops] == [
            "set", "set", "seal", "delete"]
        assert journal.ops[0] == TrieOp("set", journal.ops[0].key, b"a")


# ----------------------------------------------------------------------
# Deployment-level joins: snapshot joiner == always-online baseline
# ----------------------------------------------------------------------


class TestSnapshotJoin:
    @pytest.mark.parametrize("seed", [3101, 3102, 3103])
    def test_joiner_matches_full_replay_node(self, seed):
        dep = make_dep(seed)
        journal = attach_journal(dep)
        baseline = SyncedReplica.full_replay(dep.contract.store)
        guest_chan, cp_chan = dep.establish_link()
        dep.counterparty.bank.mint("carol", "PICA", 10_000)

        send_cp_transfers(dep, cp_chan, 6)
        dep.run_for(600.0)

        height = finalized_join_height(dep, journal)
        joiner = SyncedReplica.join_from_snapshot(
            dep.contract, dep.guest_client, height, journal)
        assert joiner.synced_from == height
        # Caught up to the source's present instantly.
        assert bytes(joiner.root_hash) == bytes(dep.contract.store.root_hash)

        # The joiner must now track every later mutation in lockstep.
        send_cp_transfers(dep, cp_chan, 5)
        dep.run_for(600.0)

        source_root = bytes(dep.contract.store.root_hash)
        assert bytes(joiner.root_hash) == source_root
        assert bytes(baseline.root_hash) == source_root
        assert (dump_store(joiner.store)
                == dump_store(dep.contract.store)
                == dump_store(baseline.store))

        # Served proofs are bit-identical too, and some receipts exist.
        prefix = paths.receipt_prefix(dep.contract.transfer_port, guest_chan)
        source_proofs = receipt_proofs(dep.contract.store, prefix)
        assert source_proofs, "expected at least one provable receipt"
        assert receipt_proofs(joiner.store, prefix) == source_proofs
        assert receipt_proofs(baseline.store, prefix) == source_proofs

    def test_join_mid_chaos_storm(self):
        dep = make_dep(3104, tracing=True)
        journal = attach_journal(dep)
        baseline = SyncedReplica.full_replay(dep.contract.store)
        guest_chan, cp_chan = dep.establish_link()
        dep.counterparty.bank.mint("carol", "PICA", 10_000)

        send_cp_transfers(dep, cp_chan, 4)
        dep.run_for(400.0)   # pre-storm traffic, some heights finalized

        plan = (FaultPlan(label="join-storm")
                .add("host_blackout", at=5.0, duration=25.0)
                .add("gossip_drop", at=0.0, duration=40.0, probability=0.3)
                .add("relayer_crash", at=10.0, duration=15.0)
                .add("validator_crash", at=0.0, duration=60.0, target="2"))
        ChaosInjector(dep, plan).arm()
        send_cp_transfers(dep, cp_chan, 6)
        dep.run_for(20.0)    # mid-storm: blackout on, relayer down

        height = finalized_join_height(dep, journal)
        joiner = SyncedReplica.join_from_snapshot(
            dep.contract, dep.guest_client, height, journal)
        assert bytes(joiner.root_hash) == bytes(dep.contract.store.root_hash)

        send_cp_transfers(dep, cp_chan, 3)
        dep.run_for(900.0)   # storm recovery + drain

        source_root = bytes(dep.contract.store.root_hash)
        assert bytes(joiner.root_hash) == source_root
        assert bytes(baseline.root_hash) == source_root
        assert (dump_store(joiner.store)
                == dump_store(dep.contract.store)
                == dump_store(baseline.store))


# ----------------------------------------------------------------------
# Refusal paths
# ----------------------------------------------------------------------


class _BogusClient:
    """A light client committing to a root the snapshot cannot match."""

    def __init__(self, height):
        self._height = height

    def consensus_root(self, height):
        return Hash.of(b"not-the-state-root") if height == self._height else None


class TestJoinRefusals:
    @pytest.fixture(scope="class")
    def run(self):
        dep = make_dep(3105)
        journal = attach_journal(dep)
        _guest_chan, cp_chan = dep.establish_link()
        dep.counterparty.bank.mint("carol", "PICA", 10_000)
        send_cp_transfers(dep, cp_chan, 4)
        dep.run_for(600.0)
        return dep, journal

    def test_unfinalized_height_is_refused(self, run):
        dep, journal = run
        future = dep.guest_client.latest_height() + 1_000
        with pytest.raises(StateSyncError, match="not finalized"):
            SyncedReplica.join_from_snapshot(
                dep.contract, dep.guest_client, future, journal)

    def test_missing_watermark_is_refused(self, run):
        dep, _journal = run
        height = dep.guest_client.latest_height()
        with pytest.raises(StateSyncError, match="no watermark"):
            SyncedReplica.join_from_snapshot(
                dep.contract, dep.guest_client, height, StateJournal())

    def test_snapshot_root_mismatch_is_refused(self, run):
        dep, journal = run
        height = dep.guest_client.latest_height()
        with pytest.raises(StateSyncError, match="does not match"):
            SyncedReplica.join_from_snapshot(
                dep.contract, _BogusClient(height), height, journal)

    def test_double_journal_attach_is_refused(self, run):
        dep, _journal = run
        with pytest.raises(GuestError, match="already attached"):
            dep.contract.attach_state_journal(StateJournal())

    def test_snapshot_bytes_are_self_proving(self, run):
        """The snapshot is the preimage of the committed root: loading
        it reproduces the finalized state root exactly."""
        dep, _journal = run
        height = dep.guest_client.latest_height()
        snapshot = dump_store(dep.contract.state_view(height))
        loaded = load_store(snapshot)
        assert (bytes(loaded.root_hash)
                == bytes(dep.guest_client.consensus_root(height)))
