"""Tests for validate_self_client — the check of the paper's footnote 2.

Octopus Network's NEAR-IBC left ``validate_self_client`` blank; this
reproduction implements it on both chains: during the connection
handshake each side validates the counterparty's claimed light-client
view of *itself* and refuses connections bound to a fake twin.
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.errors import HandshakeError
from repro.guest.config import GuestConfig
from repro.ibc.self_client import SelfClientState, validate_self_client
from repro.validators.profiles import simple_profiles


class TestValidationRule:
    KNOWN = frozenset({b"\x01" * 32})

    def good(self):
        return SelfClientState(chain_id="guest", latest_height=5,
                               trusted_set_hash=b"\x01" * 32)

    def test_honest_claim_passes(self):
        validate_self_client(self.good(), "guest", 10, self.KNOWN)

    def test_wrong_chain_id_rejected(self):
        claim = SelfClientState("evil-twin", 5, b"\x01" * 32)
        with pytest.raises(HandshakeError, match="tracks chain"):
            validate_self_client(claim, "guest", 10, self.KNOWN)

    def test_future_height_rejected(self):
        claim = SelfClientState("guest", 99, b"\x01" * 32)
        with pytest.raises(HandshakeError, match="claims height"):
            validate_self_client(claim, "guest", 10, self.KNOWN)

    def test_unknown_validator_set_rejected(self):
        claim = SelfClientState("guest", 5, b"\xff" * 32)
        with pytest.raises(HandshakeError, match="never had"):
            validate_self_client(claim, "guest", 10, self.KNOWN)

    def test_serialization_roundtrip(self):
        claim = self.good()
        assert SelfClientState.from_bytes(claim.to_bytes()) == claim


class TestOnChainValidation:
    @pytest.fixture
    def dep(self):
        return Deployment(DeploymentConfig(
            seed=101,
            guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
            profiles=simple_profiles(4),
        ))

    def test_handshake_carries_and_passes_validation(self, dep):
        """The normal link establishment exercises the check: the relayer
        ships real client-state claims, both sides accept them."""
        guest_chan, cp_chan = dep.establish_link()
        assert str(guest_chan) == "channel-0"

    def test_guest_rejects_fake_twin_claim(self, dep):
        dep.run_for(30.0)
        from repro.errors import GuestError
        fake = SelfClientState(
            chain_id="guest",
            latest_height=dep.contract.head.height,
            trusted_set_hash=b"\x66" * 32,  # a set the guest never had
        )
        with pytest.raises(HandshakeError):
            dep.contract._validate_claim_about_guest(fake.to_bytes())

    def test_guest_rejects_future_height_claim(self, dep):
        dep.run_for(30.0)
        fake = SelfClientState(
            chain_id="guest",
            latest_height=dep.contract.head.height + 1_000,
            trusted_set_hash=bytes(dep.contract.current_epoch.canonical_hash()),
        )
        with pytest.raises(HandshakeError):
            dep.contract._validate_claim_about_guest(fake.to_bytes())

    def test_guest_accepts_honest_claim(self, dep):
        dep.run_for(30.0)
        honest = SelfClientState(
            chain_id="guest",
            latest_height=0,
            trusted_set_hash=bytes(dep.contract.current_epoch.canonical_hash()),
        )
        dep.contract._validate_claim_about_guest(honest.to_bytes())  # no raise

    def test_counterparty_rejects_wrong_chain_claim(self, dep):
        dep.run_for(30.0)
        fake = SelfClientState(
            chain_id="not-picasso",
            latest_height=1,
            trusted_set_hash=bytes(dep.counterparty.validator_set().canonical_hash()),
        )
        with pytest.raises(HandshakeError):
            dep.counterparty._validate_claim_about_us(fake.to_bytes())

    def test_counterparty_accepts_churned_historical_set(self, dep):
        """Claims may reference any set the chain *ever* had (a lagging
        but honest client), not just the current one."""
        genesis_hash = bytes(dep.counterparty.validator_set().canonical_hash())
        dep.run_for(120.0)  # churn rotates the set
        claim = SelfClientState(
            chain_id=dep.counterparty.config.chain_id,
            latest_height=1,
            trusted_set_hash=genesis_hash,
        )
        dep.counterparty._validate_claim_about_us(claim.to_bytes())  # no raise

    def test_conn_open_try_on_cp_rejects_bogus_claim(self, dep):
        """End-to-end: a malicious relayer shipping a fake-twin claim has
        its conn_open_try rejected by the counterparty chain."""
        dep.run_for(30.0)
        # Set up a legitimate INIT on the guest to prove.
        conn = dep.contract.ibc.conn_open_init(
            dep.contract.counterparty_client_id, dep.guest_client_id_on_cp,
        )
        from repro.ibc import commitment as paths
        proof = dep.contract.store.prove(paths.connection_path(conn))
        fake_claim = SelfClientState(
            chain_id=dep.counterparty.config.chain_id,
            latest_height=dep.counterparty.height + 500,
            trusted_set_hash=bytes(dep.counterparty.validator_set().canonical_hash()),
        )
        # Push the guest header so the proof verifies, then try.
        outcomes = []

        def attempt():
            dep.counterparty.submit(
                lambda: dep.counterparty.ibc.conn_open_try(
                    dep.guest_client_id_on_cp, dep.contract.counterparty_client_id,
                    conn, proof, dep.contract.head.height,
                    counterparty_client_state=fake_claim.to_bytes(),
                ),
                on_result=lambda value, h: outcomes.append(value),
            )

        attempt()
        dep.run_for(30.0)
        assert outcomes and isinstance(outcomes[0], HandshakeError)
        assert "claims height" in str(outcomes[0])
