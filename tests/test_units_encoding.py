"""Unit tests for currency/limit constants and the wire encoding."""

import pytest

from repro import units
from repro.encoding import Reader, encode_bytes, encode_str, encode_varint


class TestCurrency:
    def test_sol_roundtrip(self):
        assert units.lamports_to_sol(units.sol_to_lamports(12.5)) == 12.5

    def test_usd_at_200_per_sol(self):
        assert units.lamports_to_usd(units.LAMPORTS_PER_SOL) == 200.0

    def test_cents(self):
        # 5000 lamports (one base fee) is 0.1 cents (§V-B).
        assert units.lamports_to_cents(units.BASE_FEE_LAMPORTS_PER_SIGNATURE) == pytest.approx(0.1)

    def test_usd_roundtrip(self):
        assert units.lamports_to_usd(units.usd_to_lamports(3.02)) == pytest.approx(3.02)

    def test_published_limits(self):
        assert units.MAX_TRANSACTION_BYTES == 1232
        assert units.MAX_COMPUTE_UNITS == 1_400_000
        assert units.MAX_ACCOUNT_BYTES == 10 * 1024 * 1024
        assert units.MAX_HEAP_BYTES == 32 * 1024

    def test_rent_matches_paper(self):
        """§V-D: 10 MiB deposit ≈ 14.6 k USD."""
        deposit = units.rent_exempt_deposit(units.MAX_ACCOUNT_BYTES)
        assert units.lamports_to_usd(deposit) == pytest.approx(14_600, rel=0.01)

    def test_rent_monotonic(self):
        assert units.rent_exempt_deposit(2048) > units.rent_exempt_deposit(1024)

    def test_deployment_constants(self):
        assert units.DELTA_SECONDS == 3600.0
        assert units.MIN_EPOCH_HOST_BLOCKS == 100_000
        assert units.STAKE_UNBONDING_SECONDS == 7 * 24 * 3600.0


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**62])
    def test_roundtrip(self, value):
        reader = Reader(encode_varint(value))
        assert reader.read_varint() == value
        reader.expect_end()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_raises(self):
        data = encode_varint(300)[:-1]
        with pytest.raises(ValueError):
            Reader(data).read_varint()

    def test_overlong_rejected(self):
        with pytest.raises(ValueError):
            Reader(b"\xff" * 11).read_varint()


class TestBytesAndStrings:
    def test_bytes_roundtrip(self):
        reader = Reader(encode_bytes(b"hello") + encode_bytes(b""))
        assert reader.read_bytes() == b"hello"
        assert reader.read_bytes() == b""
        reader.expect_end()

    def test_str_roundtrip(self):
        reader = Reader(encode_str("transfer/channel-0/uatom"))
        assert reader.read_str() == "transfer/channel-0/uatom"

    def test_trailing_bytes_detected(self):
        reader = Reader(encode_bytes(b"x") + b"junk")
        reader.read_bytes()
        with pytest.raises(ValueError):
            reader.expect_end()

    def test_truncated_read(self):
        with pytest.raises(ValueError):
            Reader(b"\x05ab").read_bytes()

    def test_remaining(self):
        reader = Reader(b"abcdef")
        reader.read(2)
        assert reader.remaining == 4
