"""Batched relaying is a pure optimisation — property and unit tests.

The workload PR's batching path coalesces many pending packets into one
BATCH_EXEC host transaction.  That must never be observable at the IBC
layer: delivering N pending packets in *any* split into batches, in any
order, with any duplicates mixed in, has to land the receiver in exactly
the state one-at-a-time relaying produces — same store root, same acks,
same bank balances.  This file checks that equivalence at three levels:

* hypothesis property tests over a two-IbcHost link (random splits,
  permutations and duplicate injections, ≥200 sequences);
* ``GuestApi.deliver_batch`` packing: every emitted transaction fits the
  1232-byte cap and dense chunk packing beats per-packet staging;
* the guest contract's BATCH_EXEC decoder: atomic decode-then-execute,
  per-entry error isolation, and the BatchProcessed event.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Deployment, DeploymentConfig
from repro.errors import DoubleDeliveryError
from repro.guest import instructions as ins
from repro.guest.api import BatchOp
from repro.guest.config import GuestConfig
from repro.ibc import commitment as paths
from repro.ibc.host import IbcHost
from repro.validators.profiles import simple_profiles

from tests.test_ibc_core import Link


# ----------------------------------------------------------------------
# Level 1: batch split ≡ sequential delivery (protocol state machine)
# ----------------------------------------------------------------------

def _send_pending(link, payloads):
    """B sends ``payloads``; returns the pending packets with proofs."""
    packets = [link.b.send_packet(link.port, link.chan_b, p, 0.0)
               for p in payloads]
    height = link.sync()
    prefix = paths.commitment_prefix(link.port, link.chan_b)
    proofs = {p.sequence: link.b.store.prove_seq(prefix, p.sequence)
              for p in packets}
    return packets, proofs, height


def _receiver_state(link):
    return link.a.store.root_hash, link.a.counters.packets_received


# A split of n items into ordered groups: a permutation of the indices
# plus cut points.  Each group models one relayer batch.
@st.composite
def _splits(draw, n):
    order = draw(st.permutations(list(range(n))))
    cuts = draw(st.sets(st.integers(min_value=1, max_value=max(1, n - 1)),
                        max_size=n - 1) if n > 1 else st.just(set()))
    bounds = [0, *sorted(cuts), n]
    return [order[bounds[i]:bounds[i + 1]] for i in range(len(bounds) - 1)
            if bounds[i] < bounds[i + 1]]


@st.composite
def _batch_cases(draw):
    payloads = draw(st.lists(st.binary(min_size=0, max_size=48),
                             min_size=1, max_size=10))
    groups = draw(_splits(len(payloads)))
    # Indices to maliciously re-deliver right after their group lands.
    dupes = draw(st.sets(st.sampled_from(range(len(payloads))), max_size=3))
    return payloads, groups, dupes


@settings(max_examples=220, deadline=None)
@given(_batch_cases())
def test_any_batch_split_matches_sequential_delivery(case):
    payloads, groups, dupes = case

    # Reference: a fresh link relayed strictly one packet at a time, in
    # send order.
    sequential = Link()
    sequential.open(port=sequential.echo_port)
    packets, proofs, height = _send_pending(sequential, payloads)
    sequential_acks = {
        p.sequence: sequential.a.recv_packet(p, proofs[p.sequence], height)
        for p in packets
    }

    # Candidate: an identically-built link relayed in the drawn batch
    # split — arbitrary grouping and order, duplicates injected.
    batched = Link()
    batched.open(port=batched.echo_port)
    packets, proofs, height = _send_pending(batched, payloads)
    batched_acks = {}
    delivered = set()
    replay_attempts = 0
    for group in groups:
        for index in group:
            packet = packets[index]
            batched_acks[packet.sequence] = batched.a.recv_packet(
                packet, proofs[packet.sequence], height)
            delivered.add(index)
        root_before = batched.a.store.root_hash
        for index in sorted(dupes & delivered):
            packet = packets[index]
            replay_attempts += 1
            with pytest.raises(DoubleDeliveryError):
                batched.a.recv_packet(packet, proofs[packet.sequence], height)
            # A rejected duplicate leaves no trace in the store.
            assert batched.a.store.root_hash == root_before

    assert batched_acks == sequential_acks
    assert _receiver_state(batched) == _receiver_state(sequential)
    assert batched.a.counters.double_deliveries_rejected == replay_attempts


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_batch_split_preserves_transfer_bank_state(data):
    """The ICS-20 version of the same property: escrow/mint bookkeeping
    is identical whether transfers land singly or in batches."""
    amounts = data.draw(st.lists(st.integers(min_value=1, max_value=50),
                                 min_size=1, max_size=8), label="amounts")
    groups = data.draw(_splits(len(amounts)), label="groups")

    def run(split):
        link = Link()
        link.open()  # the ICS-20 transfer port
        payloads = []
        for i, amount in enumerate(amounts):
            link.bank_b.mint(f"alice-{i}", "uatom", amount)
            payloads.append(link.app_b.make_payload(
                link.chan_b, "uatom", amount, f"alice-{i}", f"bob-{i}"))
        packets, proofs, height = _send_pending(link, payloads)
        for group in split:
            for index in group:
                packet = packets[index]
                ack = link.a.recv_packet(packet, proofs[packet.sequence], height)
                assert ack.success
        return link

    sequential = run([[i] for i in range(len(amounts))])
    batched = run(groups)
    assert batched.a.store.root_hash == sequential.a.store.root_hash
    assert batched.bank_a._balances == sequential.bank_a._balances
    assert batched.bank_b._balances == sequential.bank_b._balances
    # Conservation: everything escrowed on B circulates as vouchers on A.
    voucher = batched.app_a.voucher_denom(batched.chan_a, "uatom")
    escrow = batched.app_b.escrow_address(batched.chan_b)
    assert (batched.bank_a.total_supply(voucher)
            == batched.bank_b.balance(escrow, "uatom")
            == sum(amounts))


# ----------------------------------------------------------------------
# Level 2: GuestApi.deliver_batch packing respects the 1232-byte cap
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def packing_dep():
    return Deployment(DeploymentConfig(
        seed=7,
        guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
        profiles=simple_profiles(4),
    ))


def _proof_factory():
    """An IbcHost with a deep store: its proofs are large enough that a
    batched message cannot ride inline and must be chunk-staged."""
    host = IbcHost("proof-mill")
    for index in range(2_000):
        key = hashlib.sha256(b"mill" + index.to_bytes(8, "big")).digest()
        host.store.trie.set(key, key)
    return host


def _pending_ops(count, payload_size=64):
    from repro.ibc.identifiers import ChannelId, PortId
    from repro.ibc.packet import Packet
    host = _proof_factory()
    ops = []
    for i in range(count):
        key = f"pkt/{i}"
        host.store.set(key, b"x" * 8)
        proof = host.store.prove(key)
        packet = Packet(i, PortId("transfer"), ChannelId("channel-0"),
                        PortId("transfer"), ChannelId("channel-0"),
                        b"p" * payload_size, 0.0)
        ops.append(BatchOp(kind="recv", packet=packet, proof=proof,
                           proof_height=1))
    return ops


def _capture_bundle(monkeypatch, api):
    captured = {}

    def fake_submit_bundle(transactions, tip_lamports=0, on_result=None):
        captured["transactions"] = list(transactions)

    monkeypatch.setattr(api.chain, "submit_bundle", fake_submit_bundle)
    return captured


class TestDeliverBatchPacking:
    def test_empty_batch_rejected(self, packing_dep):
        with pytest.raises(ValueError):
            packing_dep.relayer_api.deliver_batch([])

    def test_small_batch_is_one_transaction(self, packing_dep, monkeypatch):
        """Messages that fit the inline budget share a single
        BATCH_EXEC transaction — no staging traffic at all."""
        api = packing_dep.relayer_api
        host = IbcHost("tiny")
        ops = []
        from repro.ibc.identifiers import ChannelId, PortId
        from repro.ibc.packet import Packet
        for i in range(3):
            host.store.set(f"k/{i}", b"v")
            ops.append(BatchOp(
                kind="recv",
                packet=Packet(i, PortId("transfer"), ChannelId("channel-0"),
                              PortId("transfer"), ChannelId("channel-0"),
                              b"tiny", 0.0),
                proof=host.store.prove(f"k/{i}"), proof_height=1,
            ))
        captured = _capture_bundle(monkeypatch, api)
        api.deliver_batch(ops)
        transactions = captured["transactions"]
        assert len(transactions) == 1
        (exec_tx,) = transactions
        exec_tx.check_size(api.chain.config.max_transaction_bytes)
        assert exec_tx.instructions[0].data[0] == ins.Op.BATCH_EXEC

    def test_every_transaction_fits_the_host_cap(self, packing_dep, monkeypatch):
        api = packing_dep.relayer_api
        ops = _pending_ops(6)
        captured = _capture_bundle(monkeypatch, api)
        api.deliver_batch(ops)
        transactions = captured["transactions"]
        limit = api.chain.config.max_transaction_bytes
        for tx in transactions:
            tx.check_size(limit)  # raises TransactionTooLargeError if not
        # Exactly one BATCH_EXEC, at the end, carrying one entry per op.
        exec_tx = transactions[-1]
        assert exec_tx.instructions[0].data[0] == ins.Op.BATCH_EXEC
        from repro.encoding import Reader
        reader = Reader(exec_tx.instructions[0].data[1:])
        assert reader.read_varint() == len(ops)

    def test_dense_packing_beats_per_packet_staging(self, packing_dep, monkeypatch):
        """The point of the batch path: chunks from different messages
        share transactions, so the bundle is materially smaller than N
        packet-at-a-time deliveries."""
        from repro.lightclient.chunked import usable_chunk_bytes
        api = packing_dep.relayer_api
        ops = _pending_ops(6)
        captured = _capture_bundle(monkeypatch, api)
        api.deliver_batch(ops)
        batched_txs = len(captured["transactions"])
        chunk = usable_chunk_bytes(api.chain.config.max_transaction_bytes)
        per_packet_txs = sum(
            -(-len(op.msg_bytes()) // chunk) + 1  # chunks + the exec tx
            for op in ops
        )
        assert batched_txs < per_packet_txs


# ----------------------------------------------------------------------
# Level 3: the guest contract's BATCH_EXEC semantics
# ----------------------------------------------------------------------

def _raw_batch(entries):
    """Hand-encode a BATCH_EXEC payload, bypassing the client-side
    BATCHABLE_KINDS guard so the contract's own checks are exercised."""
    from repro.encoding import encode_bytes, encode_varint
    out = bytearray([ins.Op.BATCH_EXEC])
    out += encode_varint(len(entries))
    for kind, mode, body in entries:
        out.append(kind)
        out.append(mode)
        out += body if mode != ins.BATCH_MODE_INLINE else encode_bytes(body)
    return bytes(out)


def _inline_msg(proof_bytes=b"", packet_bytes=b""):
    return ins.BufferedPacketMsg(
        packet_bytes=packet_bytes, proof_bytes=proof_bytes, proof_height=1,
    ).to_bytes()


class TestBatchExecContract:
    @pytest.fixture
    def dep(self):
        dep = Deployment(DeploymentConfig(
            seed=11,
            guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
            profiles=simple_profiles(4),
        ))
        dep.establish_link()
        return dep

    def _run_batch(self, dep, data):
        from tests.test_guest_contract import run_tx
        events = []
        dep.host.subscribe("BatchProcessed", events.append)
        receipt = run_tx(dep, data)
        return receipt, events

    def test_empty_batch_fails_whole_transaction(self, dep):
        receipt, events = self._run_batch(dep, _raw_batch([]))
        assert not receipt.success
        assert "empty batch" in receipt.error
        assert not events

    def test_unknown_entry_mode_fails_before_execution(self, dep):
        """Decode-before-execute: a malformed entry aborts the whole
        transaction up front instead of half-applying the batch."""
        good = (int(ins.Op.RECV_EXEC), ins.BATCH_MODE_INLINE, _inline_msg())
        bad = (int(ins.Op.RECV_EXEC), 9, b"")
        receipt, events = self._run_batch(dep, _raw_batch([good, bad]))
        assert not receipt.success
        assert "mode" in receipt.error
        assert not events

    def test_failed_entries_are_isolated(self, dep):
        """IBC-level failures (undecodable packets, bad proofs) are
        recorded per entry; the batch transaction itself succeeds and
        reports them through BatchProcessed."""
        entries = [
            (int(ins.Op.RECV_EXEC), ins.BATCH_MODE_INLINE,
             _inline_msg(packet_bytes=b"not-a-packet")),
            (int(ins.Op.SEND_PACKET), ins.BATCH_MODE_INLINE, _inline_msg()),
        ]
        root_before = dep.contract.ibc.store.root_hash
        receipt, events = self._run_batch(dep, _raw_batch(entries))
        assert receipt.success
        assert len(events) == 1
        payload = events[0].payload
        assert payload["total"] == 2
        assert payload["ok"] == 0
        assert len(payload["failures"]) == 2
        # The non-batchable opcode is named in its failure record.
        assert any("not batchable" in reason
                   for _, _, reason in payload["failures"])
        # Nothing half-applied.
        assert dep.contract.ibc.store.root_hash == root_before
