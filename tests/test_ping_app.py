"""Tests for the ICS ping-pong app, including an end-to-end probe over
a second port of the full deployment."""

import pytest

from repro.ibc.apps.ping import PingApp, PingPayload
from repro.ibc.identifiers import ChannelId, PortId
from repro.ibc.packet import Acknowledgement, Packet


def make_packet(payload: bytes) -> Packet:
    return Packet(0, PortId("guest-ping"), ChannelId("channel-0"),
                  PortId("guest-ping"), ChannelId("channel-1"), payload, 0.0)


class TestPingUnit:
    def test_payload_roundtrip(self):
        payload = PingPayload(nonce=7, sent_at=123.456)
        assert PingPayload.from_bytes(payload.to_bytes()) == payload

    def test_recv_echoes_nonce(self):
        app = PingApp()
        ack = app.on_recv(make_packet(PingPayload(42, 1.0).to_bytes()))
        assert ack.success
        from repro.encoding import Reader
        assert Reader(ack.result).read_varint() == 42
        assert app.pings_received == [42]

    def test_malformed_ping_nacked(self):
        app = PingApp()
        ack = app.on_recv(make_packet(b"\xff" * 3))
        assert not ack.success

    def test_round_trip_recorded(self):
        now = [10.0]
        app = PingApp(clock=lambda: now[0])
        payload = app.make_payload(nonce=5)
        now[0] = 13.5
        pong = Acknowledgement.ok(PingApp().on_recv(make_packet(payload)).result)
        app.on_acknowledge(make_packet(payload), pong)
        (record,) = app.completed
        assert record.round_trip == pytest.approx(3.5)

    def test_mismatched_pong_ignored(self):
        from repro.encoding import encode_varint
        app = PingApp()
        payload = app.make_payload(nonce=5)
        app.on_acknowledge(make_packet(payload),
                           Acknowledgement.ok(encode_varint(99)))
        assert not app.completed

    def test_timeout_recorded(self):
        app = PingApp()
        app.on_timeout(make_packet(app.make_payload(nonce=3)))
        assert app.timeouts == [3]


class TestPingEndToEnd:
    def test_ping_over_a_dedicated_port(self):
        """A second application port over the same connection: ping the
        counterparty through the full relay pipeline and measure the
        cross-chain round trip."""
        from repro import Deployment, DeploymentConfig
        from repro.guest.config import GuestConfig
        from repro.validators.profiles import simple_profiles

        dep = Deployment(DeploymentConfig(
            seed=191,
            guest=GuestConfig(delta_seconds=120.0, min_stake_lamports=1),
            profiles=simple_profiles(4),
        ))
        # Bind ping apps on both chains before opening the channel.
        guest_ping = PingApp(clock=lambda: dep.sim.now)
        cp_ping = PingApp(clock=lambda: dep.sim.now)
        port = PortId("guest-ping")
        dep.contract.ibc.bind_port(port, guest_ping)
        dep.counterparty.ibc.bind_port(port, cp_ping)

        dep.establish_link()  # transfer channel + the connection
        opened = {}
        dep.relayer.open_channel(port, port, lambda g, c: opened.update(g=g, c=c))
        deadline = dep.sim.now + 3_600.0
        while "c" not in opened and dep.sim.now < deadline:
            dep.sim.step()
        assert "c" in opened

        dep.user_api.send_packet(str(port), str(opened["g"]),
                                 guest_ping.make_payload(nonce=1))
        dep.run_for(300.0)

        assert cp_ping.pings_received == [1]
        (record,) = guest_ping.completed
        # The cross-chain round trip: guest finalisation + relay + cp
        # block + chunked LC update back + ack bundle.  Tens of seconds,
        # under the several-minute mark.
        assert 5.0 < record.round_trip < 300.0
