"""Shared fixtures for the benchmark harness.

The heavyweight simulated deployments run once per session; each bench
then regenerates its table/figure from the recorded raw series, prints
it in the paper's format, and asserts the published *shape* (who wins,
by what rough factor, where the thresholds fall).  Absolute numbers are
not expected to match a mainnet testbed — see EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments.blocks import BlockIntervalConfig, BlockIntervalRun
from repro.experiments.evaluation import EvaluationConfig, EvaluationRun


@pytest.fixture(scope="session")
def evaluation():
    """The main §V deployment (Figs. 2-5, Table I, ReceivePacket)."""
    run = EvaluationRun(EvaluationConfig())
    return run.execute()


@pytest.fixture(scope="session")
def fig6_results():
    """The multi-day Fig. 6 run."""
    run = BlockIntervalRun(BlockIntervalConfig(duration=3 * 24 * 3600.0))
    return run.execute()


def emit(text: str) -> None:
    """Print a rendered figure block (visible with pytest -s; also kept
    in the captured output otherwise)."""
    print("\n" + text)
