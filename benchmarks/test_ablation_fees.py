"""Ablation — fee strategies under congestion (§VI-B).

The trade-off the paper leaves as future work: the base fee is cheapest
but slowest under load; priority fees and bundles buy latency at the
two cost levels Fig. 3 shows.
"""

from conftest import emit
from repro.experiments.ablations import fee_strategy_tradeoff
from repro.metrics.table import format_table


def run():
    return fee_strategy_tradeoff(congestion=0.7, samples=120)


def test_ablation_fees(benchmark):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["strategy", "p50 latency (s)", "p90-ish max (s)", "mean cost (USD)"],
        [[p.name, f"{p.latency.median:.2f}", f"{p.latency.maximum:.2f}",
          f"{p.mean_cost_usd:.3f}"] for p in points],
        title="Ablation - fee strategy trade-off at congestion 0.7",
    ))

    by_name = {p.name: p for p in points}
    # Latency ordering: paying beats not paying.
    assert by_name["priority"].latency.median < by_name["base"].latency.median
    assert by_name["bundle"].latency.median < by_name["base"].latency.median
    # Cost ordering: base << priority < bundle (the Fig. 3 clusters).
    assert by_name["base"].mean_cost_usd < 0.01
    assert 1.0 < by_name["priority"].mean_cost_usd < 2.0
    assert 2.5 < by_name["bundle"].mean_cost_usd < 3.5
