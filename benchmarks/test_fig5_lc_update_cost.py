"""Fig. 5 — cost of light-client updates.

Paper: the relayer pays the base fee model — 0.1 cents per transaction
plus 0.1 cents per verified signature; variance tracks the update's data
size and signature count (§V-B).
"""

from conftest import emit
from repro.experiments.report import render_fig5
from repro.units import lamports_to_cents


def extract(evaluation):
    updates = [u for u in evaluation.lc_updates if u.success]
    return [(lamports_to_cents(u.total_fee),
             0.1 * (u.transaction_count + u.signature_count)) for u in updates]


def test_fig5_lc_update_cost(evaluation, benchmark):
    pairs = benchmark(extract, evaluation)
    emit(render_fig5(evaluation))

    assert len(pairs) > 30
    # Exact fee decomposition: cost == 0.1c x (txs + signatures).
    for cost, expected in pairs:
        assert abs(cost - expected) < 0.01
    # Variance exists (data size / signer count differ per update).
    costs = [cost for cost, _ in pairs]
    assert max(costs) - min(costs) > 1.0
    # Magnitude: tens of cents per update.
    assert 5.0 < sum(costs) / len(costs) < 40.0
