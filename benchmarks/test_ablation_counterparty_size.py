"""Ablation — counterparty validator-set size vs light-client update cost.

Fig. 4/5's transaction counts are driven by how many commit signatures a
counterparty header carries.  This bench sweeps the validator-set size
and regenerates the chunk plan for each: the 36.5-transaction figure is
where a Picasso-sized chain (~190 validators) lands on the curve, and a
small chain would be several times cheaper to follow.
"""

from conftest import emit
from repro.crypto.simsig import SimSigScheme
from repro.crypto.hashing import Hash
from repro.lightclient.chunked import plan_update_chunks
from repro.lightclient.tendermint import CometHeader, Commit, LightClientUpdate, ValidatorSet
from repro.metrics.table import format_table


def plan_for(validators: int):
    scheme = SimSigScheme()
    keys = [scheme.keypair_from_seed(bytes([12]) + i.to_bytes(4, "big") + bytes(27))
            for i in range(validators)]
    valset = ValidatorSet(members=tuple((kp.public_key, 100) for kp in keys))
    header = CometHeader(
        chain_id="sweep-1", height=10, time=60.0, app_hash=Hash.of(b"app"),
        validators_hash=valset.canonical_hash(),
        next_validators_hash=valset.canonical_hash(),
    )
    message = header.sign_bytes()
    commit = Commit(signatures=tuple((kp.public_key, kp.sign(message)) for kp in keys))
    return plan_update_chunks(LightClientUpdate(header, commit, valset))


def run():
    return {n: plan_for(n) for n in (10, 50, 100, 190, 300)}


def test_ablation_counterparty_size(benchmark):
    plans = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["validators", "txs / update", "signatures", "cost (cents)"],
        [[str(n), str(p.transaction_count), str(p.signature_count),
          f"{0.1 * (p.transaction_count + p.signature_count):.1f}"]
         for n, p in sorted(plans.items())],
        title="Ablation - counterparty size vs LC update cost (Fig. 4/5 driver)",
    ))

    # Monotone in the set size...
    sizes = sorted(plans)
    counts = [plans[n].transaction_count for n in sizes]
    assert counts == sorted(counts)
    # ...roughly linear (each validator adds a signature + set bytes)...
    assert plans[300].transaction_count > 2.5 * plans[100].transaction_count
    # ...and the Picasso-sized point sits in the paper's 36.5 regime.
    assert 30 <= plans[190].transaction_count <= 43
