"""Throughput under batched relaying — the §V block-space economics.

Sweeps offered packet load across relayer batching configurations on
the same seed and asserts the headline: with scarce host block space,
coalescing RecvPacket work into BATCH_EXEC bundles at least doubles the
sustained packet rate at saturation while *lowering* the relayer's fee
bill per packet.  The raw sweep is written to ``BENCH_throughput.json``
at the repo root for the CI smoke job and for plotting.
"""

from __future__ import annotations

import json
from pathlib import Path

from conftest import emit

from repro.experiments.throughput import render_sweep, run_throughput_sweep

_REPO_ROOT = Path(__file__).resolve().parent.parent


def test_throughput_sweep_batching_wins():
    results = run_throughput_sweep()
    emit(render_sweep(results))
    out = _REPO_ROOT / "BENCH_throughput.json"
    out.write_text(json.dumps(results, indent=2) + "\n")

    loads = results["offered_loads"]
    sizes = results["batch_sizes"]
    assert len(loads) >= 3, "sweep needs at least three offered-load points"
    assert len(sizes) >= 2 and min(sizes) == 1, "need a classic baseline column"

    by_key = {(p["offered_pps"], p["batch_max_packets"]): p
              for p in results["points"]}
    assert len(by_key) == len(loads) * len(sizes)

    for point in results["points"]:
        # Every point runs to completion: everything offered is sent,
        # committed and delivered exactly once within the drain window.
        assert point["sent"] > 0
        assert point["send_failures"] == 0
        assert point["delivered"] == point["sent"]
        assert point["outstanding"] == 0
        assert 0 < point["latency_p50_s"] <= point["latency_p95_s"] <= point["latency_p99_s"]
        assert point["sustained_pps"] > 0

    top = max(loads)
    unbatched = by_key[(top, min(sizes))]
    batched = by_key[(top, max(sizes))]
    # The headline: at saturation, batching at least doubles sustained
    # throughput on identical traffic (same seed, same arrivals)...
    assert batched["sustained_pps"] >= 2.0 * unbatched["sustained_pps"], (
        batched["sustained_pps"], unbatched["sustained_pps"])
    # ...while costing the relayer *less* per packet, not more.
    assert batched["fee_lamports_per_packet"] < unbatched["fee_lamports_per_packet"]
    # Batching also shortens the queue: saturated tail latency drops.
    assert batched["latency_p95_s"] < unbatched["latency_p95_s"]

    # At light load both configurations keep up with the offered rate;
    # the win only appears once block space is scarce.
    light = min(loads)
    for size in (min(sizes), max(sizes)):
        point = by_key[(light, size)]
        assert point["sustained_pps"] > 0.8 * light
