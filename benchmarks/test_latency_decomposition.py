"""Decomposing the Fig. 2 send latency into its pipeline stages.

Not a separate paper figure, but the analysis behind §V-A's discussion:
the send latency = (transaction landing + waiting for GenerateBlock) +
(validator signing until quorum).  The paper attributes the stragglers
to the second stage; this bench verifies that attribution holds in the
reproduction and shows the stage means.

The breakdown comes entirely from the observability layer: the Guest
Contract opens a ``packet.block_wait`` span when SEND_PACKET commits a
packet and hands it off to a ``packet.quorum_wait`` span when
GENERATE_BLOCK picks it up (docs/OBSERVABILITY.md) — no bench-side
bookkeeping against chain internals.
"""

import statistics

from conftest import emit
from repro.metrics.table import format_table


def extract(evaluation):
    """Pair each packet's two phase spans by its sequence key."""
    trace = evaluation.trace
    block_wait = {record.key: record.duration
                  for record in trace.spans_named("packet.block_wait")
                  if record.end is not None}
    quorum_wait = {record.key: record.duration
                   for record in trace.spans_named("packet.quorum_wait")
                   if record.end is not None}
    return [(block_wait[sequence], quorum_wait[sequence])
            for sequence in sorted(block_wait.keys() & quorum_wait.keys())]


def test_latency_decomposition(evaluation, benchmark):
    rows = benchmark(extract, evaluation)
    assert len(rows) > 50

    blocks = sorted(wait for wait, _ in rows)
    quorums = sorted(wait for _, wait in rows)

    def stats(values):
        return [f"{statistics.mean(values):.1f}",
                f"{values[len(values) // 2]:.1f}",
                f"{values[-1]:.1f}"]

    emit(format_table(
        ["stage", "mean (s)", "median (s)", "max (s)"],
        [["commit -> block generated"] + stats(blocks),
         ["block -> quorum (signing)"] + stats(quorums)],
        title="Fig. 2 latency decomposition (SV-A attribution)",
    ))

    # The spans must agree with the event-capture bookkeeping the other
    # Fig. 2 benches use: same packets, same phase totals.
    recorded = [r for r in evaluation.sends
                if r.wait_for_block is not None and r.wait_for_quorum is not None]
    assert abs(len(rows) - len(recorded)) <= 2   # in-flight tail at cutoff
    span_mean = statistics.mean(b + q for b, q in rows)
    record_mean = statistics.mean(
        r.wait_for_block + r.wait_for_quorum for r in recorded)
    assert abs(span_mean - record_mean) / record_mean < 0.05

    # The crank stage is bounded and short (poll ~2 s + landing ~1 s)...
    assert blocks[len(blocks) // 2] < 10.0
    # ...while the signing stage owns the stragglers, as SV-A says
    # ("stragglers were caused by delays from the Validators").
    assert quorums[-1] > 10 * blocks[-1] or quorums[-1] > 100.0
    # In the common case signing is a handful of seconds (Table I medians).
    assert 2.0 < quorums[len(quorums) // 2] < 15.0
