"""Decomposing the Fig. 2 send latency into its pipeline stages.

Not a separate paper figure, but the analysis behind §V-A's discussion:
the send latency = (transaction landing + waiting for GenerateBlock) +
(validator signing until quorum).  The paper attributes the stragglers
to the second stage; this bench verifies that attribution holds in the
reproduction and shows the stage means.
"""

import statistics

from conftest import emit
from repro.metrics.table import format_table


def extract(evaluation):
    rows = []
    for record in evaluation.sends:
        if record.wait_for_block is None or record.wait_for_quorum is None:
            continue
        rows.append((record.wait_for_block, record.wait_for_quorum))
    return rows


def test_latency_decomposition(evaluation, benchmark):
    rows = benchmark(extract, evaluation)
    assert len(rows) > 50

    blocks = sorted(wait for wait, _ in rows)
    quorums = sorted(wait for _, wait in rows)

    def stats(values):
        return [f"{statistics.mean(values):.1f}",
                f"{values[len(values) // 2]:.1f}",
                f"{values[-1]:.1f}"]

    emit(format_table(
        ["stage", "mean (s)", "median (s)", "max (s)"],
        [["commit -> block generated"] + stats(blocks),
         ["block -> quorum (signing)"] + stats(quorums)],
        title="Fig. 2 latency decomposition (SV-A attribution)",
    ))

    # The crank stage is bounded and short (poll ~2 s + landing ~1 s)...
    assert blocks[len(blocks) // 2] < 10.0
    # ...while the signing stage owns the stragglers, as SV-A says
    # ("stragglers were caused by delays from the Validators").
    assert quorums[-1] > 10 * blocks[-1] or quorums[-1] > 100.0
    # In the common case signing is a handful of seconds (Table I medians).
    assert 2.0 < quorums[len(quorums) // 2] < 15.0
