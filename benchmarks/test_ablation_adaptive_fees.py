"""Ablation — §VI-B's dynamic fee adjustment, implemented and measured.

The paper: "The current implementation uses fixed fee models which often
results in good latency but is inflexible... Further research is
necessary to dynamically adjust the fees according to the demand on the
host blockchain."  The AdaptiveFee strategy prices to an observed
congestion estimate; this bench compares it against the deployment's
fixed priority fee across load levels.
"""

from conftest import emit
from repro.experiments.ablations import adaptive_fee_comparison
from repro.metrics.table import format_table


def run():
    return adaptive_fee_comparison(congestion_levels=(0.1, 0.4, 0.8), samples=60)


def test_ablation_adaptive_fees(benchmark):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["congestion", "fixed USD", "adaptive USD", "fixed p50 (s)", "adaptive p50 (s)"],
        [[f"{p.congestion:.1f}", f"{p.fixed_cost_usd:.2f}", f"{p.adaptive_cost_usd:.2f}",
          f"{p.fixed_latency_median:.2f}", f"{p.adaptive_latency_median:.2f}"]
         for p in points],
        title="Ablation - fixed priority fee vs SVI-B adaptive fee",
    ))

    low = next(p for p in points if p.congestion == 0.1)
    high = next(p for p in points if p.congestion == 0.8)
    # Quiet chain: the adaptive sender pays a small fraction.
    assert low.adaptive_cost_usd < low.fixed_cost_usd / 5
    # Loaded chain: it pays up and keeps latency comparable (within 2x).
    assert high.adaptive_latency_median < 2.0 * high.fixed_latency_median + 1.0
    # Fixed cost never adapts, by definition.
    assert abs(low.fixed_cost_usd - high.fixed_cost_usd) < 0.01
