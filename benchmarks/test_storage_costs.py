"""§V-D — storage costs: the 10 MiB account, its deposit, its capacity.

Paper: the 10 MiB account (Solana's maximum) required a 14.6 k USD
rent-exemption deposit (recoverable), and suffices for over 72 thousand
key-value pairs thanks to the sealable trie.
"""

import pytest

from conftest import emit
from repro.experiments.report import render_storage
from repro.experiments.storage import measure_capacity, sealing_ablation


def test_storage_costs(benchmark):
    capacity = benchmark.pedantic(measure_capacity, rounds=1, iterations=1)
    ablation = sealing_ablation(packets=2_000, live_window=64)
    emit(render_storage(capacity, ablation))

    assert capacity.deposit_usd == pytest.approx(14_600, rel=0.01)
    assert capacity.pairs_in_account > 72_000
    assert capacity.bytes_per_pair < 150
