"""Micro-benchmarks of the primitives the Guest Contract leans on.

Not a paper figure — these quantify the substrate: sealable-trie
operations, proof generation/verification and the signature schemes, so
performance regressions in the core structures are visible.
"""

import hashlib

from repro.crypto.ed25519 import Ed25519Scheme
from repro.crypto.simsig import SimSigScheme
from repro.trie.trie import SealableTrie
from repro.trie.proof import verify_membership


def _filled_trie(count=2_000):
    trie = SealableTrie()
    for index in range(count):
        key = hashlib.sha256(index.to_bytes(8, "big")).digest()
        trie.set(key, key)
    return trie


def test_trie_insert(benchmark):
    trie = _filled_trie()
    counter = iter(range(10_000_000, 20_000_000))

    def insert():
        index = next(counter)
        key = hashlib.sha256(index.to_bytes(8, "big")).digest()
        trie.set(key, key)

    benchmark(insert)


def test_trie_prove_and_verify(benchmark):
    trie = _filled_trie()
    key = hashlib.sha256((7).to_bytes(8, "big")).digest()
    root = trie.root_hash

    def prove_verify():
        proof = trie.prove(key)
        assert verify_membership(root, proof)

    benchmark(prove_verify)


def test_trie_seal(benchmark):
    prefix = hashlib.sha256(b"seal-bench").digest()[:24]
    trie = SealableTrie()
    total = 200_000
    for seq in range(total):
        trie.set(prefix + seq.to_bytes(8, "big"), b"v")
    counter = iter(range(total - 2))

    def seal():
        trie.seal(prefix + next(counter).to_bytes(8, "big"))

    benchmark(seal)


def test_simsig_verify(benchmark):
    scheme = SimSigScheme()
    keypair = scheme.keypair_from_seed(bytes(range(32)))
    signature = keypair.sign(b"message")
    benchmark(lambda: scheme.verify(keypair.public_key, b"message", signature))


def test_ed25519_verify(benchmark):
    scheme = Ed25519Scheme()
    keypair = scheme.keypair_from_seed(bytes(range(32)))
    signature = keypair.sign(b"message")
    benchmark(lambda: scheme.verify(keypair.public_key, b"message", signature))
