"""Fig. 6 — interval between consecutive guest blocks.

Paper: the distribution follows the packet arrival process up to the
Delta = 1 h cut-off, where empty blocks are generated; about a quarter
of the blocks sit at the cut-off, and five intervals were far longer
(validator signing stalls) (§V-C).
"""

from conftest import emit
from repro.experiments.report import render_fig6


def test_fig6_block_interval(fig6_results, benchmark):
    intervals = benchmark(lambda: list(fig6_results.intervals))
    emit(render_fig6(fig6_results))

    assert len(intervals) > 40
    # No interval below Delta is an *empty* block: the sub-Delta mass
    # follows traffic, so it is spread out, not clustered at zero...
    sub_delta = [i for i in intervals if i < 3_600.0]
    assert sub_delta and max(sub_delta) - min(sub_delta) > 600.0
    # ...roughly a quarter of blocks at the cut-off...
    share = fig6_results.cutoff_share()
    assert 0.10 <= share <= 0.45, f"cut-off share {share}"
    # ...plus a small number of far-over-Delta stalls (the outage).
    assert 1 <= fig6_results.far_over_delta <= 8
