"""Fig. 4 — latency of chunked light-client updates on the guest.

Paper: updates averaged 36.5 host transactions (std 5.8); 50 % finished
under 25 s and 96 % under one minute (§V-A).
"""

import statistics

from conftest import emit
from repro.experiments.report import render_fig4
from repro.metrics.stats import fraction_below


def extract(evaluation):
    updates = [u for u in evaluation.lc_updates if u.success]
    return [u.transaction_count for u in updates], [u.latency for u in updates]


def test_fig4_lc_update_latency(evaluation, benchmark):
    tx_counts, latencies = benchmark(extract, evaluation)
    emit(render_fig4(evaluation))

    assert len(latencies) > 30
    # Transaction counts emerge from byte arithmetic near the paper's 36.5.
    assert 30 <= statistics.mean(tx_counts) <= 43
    assert statistics.pstdev(tx_counts) > 0.5  # participation/valset variance
    # Latency shape: tens of seconds, most under a minute.
    assert 0.25 <= fraction_below(latencies, 25.0) <= 0.98
    assert fraction_below(latencies, 60.0) >= 0.90
