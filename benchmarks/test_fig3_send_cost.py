"""Fig. 3 — cost of sending a packet: two fee-policy clusters.

Paper: 1.40 USD with priority fees (17 % of sends) and about 3.02 USD
with block bundles (the rest) (§V-A).
"""

import statistics

import pytest

from conftest import emit
from repro.experiments.report import render_fig3


def test_fig3_send_cost(evaluation, benchmark):
    costs = benchmark(evaluation.send_costs_usd)
    emit(render_fig3(evaluation))

    priority = [r.cost_usd for r in evaluation.sends
                if r.strategy == "priority" and r.cost_usd is not None]
    bundle = [r.cost_usd for r in evaluation.sends
              if r.strategy == "bundle" and r.cost_usd is not None]
    assert priority and bundle
    # Two tight clusters at the published levels.
    assert statistics.mean(priority) == pytest.approx(1.40, abs=0.05)
    assert statistics.mean(bundle) == pytest.approx(3.02, abs=0.05)
    # The bundle path costs roughly 2x the priority path.
    assert 1.8 < statistics.mean(bundle) / statistics.mean(priority) < 2.6
    # Policy mix near the published 17 % / 83 %.
    share = len(priority) / (len(priority) + len(bundle))
    assert 0.08 < share < 0.30
