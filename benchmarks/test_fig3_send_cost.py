"""Fig. 3 — cost of sending a packet: two fee-policy clusters.

Paper: 1.40 USD with priority fees (17 % of sends) and about 3.02 USD
with block bundles (the rest) (§V-A).
"""

import statistics

import pytest

from conftest import emit
from repro.experiments.report import render_fig3
from repro.units import lamports_to_usd


def test_fig3_send_cost(evaluation, benchmark):
    costs = benchmark(evaluation.send_costs_usd)
    emit(render_fig3(evaluation))

    # The two fee clusters straight from the trace histograms the
    # workload records per successful send (docs/OBSERVABILITY.md).
    priority = [lamports_to_usd(fee)
                for fee in evaluation.trace.histogram("send.fee.priority")]
    bundle = [lamports_to_usd(fee)
              for fee in evaluation.trace.histogram("send.fee.bundle")]
    assert priority and bundle
    # They must agree with the per-send receipt records.
    recorded = [r.cost_usd for r in evaluation.sends
                if r.strategy == "priority" and r.cost_usd is not None]
    assert statistics.mean(recorded) == pytest.approx(
        statistics.mean(priority), rel=0.02)
    # Two tight clusters at the published levels.
    assert statistics.mean(priority) == pytest.approx(1.40, abs=0.05)
    assert statistics.mean(bundle) == pytest.approx(3.02, abs=0.05)
    # The bundle path costs roughly 2x the priority path.
    assert 1.8 < statistics.mean(bundle) / statistics.mean(priority) < 2.6
    # Policy mix near the published 17 % / 83 %.
    share = len(priority) / (len(priority) + len(bundle))
    assert 0.08 < share < 0.30
