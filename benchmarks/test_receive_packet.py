"""§V-A/B — ReceivePacket: 4-5 transactions, one host block, 0.4-0.5 c.

Paper: packet deliveries took 4-5 Solana transactions depending on
packet size, always landing together in a single block; the relayer paid
0.4 cents in 98.2 % of the cases and 0.5 cents in the rest.
"""

from conftest import emit
from repro.experiments.report import render_receive_packet
from repro.units import lamports_to_cents


def extract(evaluation):
    return [(d.transaction_count, lamports_to_cents(d.total_fee), d.slot)
            for d in evaluation.deliveries if d.success]


def test_receive_packet(evaluation, benchmark):
    deliveries = benchmark(extract, evaluation)
    emit(render_receive_packet(evaluation))

    assert len(deliveries) > 30
    for tx_count, cost_cents, _ in deliveries:
        assert 3 <= tx_count <= 6           # paper: 4-5
        assert 0.25 <= cost_cents <= 0.65   # paper: 0.4-0.5 c
    # Cost equals one base fee per transaction (no priority, no tip).
    for tx_count, cost_cents, _ in deliveries:
        assert abs(cost_cents - 0.1 * tx_count) < 0.001
