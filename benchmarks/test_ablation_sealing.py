"""Ablation — sealable vs plain trie under a packet stream (§III-A).

The design claim: with sealing, live storage depends only on the number
of in-flight packets; without it, storage grows linearly with every
packet ever processed.
"""

from conftest import emit
from repro.experiments.report import render_storage
from repro.experiments.storage import measure_capacity, sealing_ablation


def run():
    return sealing_ablation(packets=5_000, live_window=64)


def test_ablation_sealing(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_storage(measure_capacity(sample=5_000), results))

    trajectory = results.sealed_bytes_trajectory
    plain = results.plain_bytes_trajectory
    # The sealable trie flat-lines once the window fills...
    steady = trajectory[len(trajectory) // 2:]
    assert max(steady) < 2 * min(steady)
    # ...the plain trie keeps growing linearly...
    assert plain[-1] > 3 * plain[len(plain) // 4]
    # ...and the final gap is at least an order of magnitude.
    assert results.growth_ratio > 10
