"""§VI-D — the guest light client as a cheap proxy, quantified.

The paper's closing observation: chains whose light clients are
expensive to follow could let counterparties follow the *guest* instead.
This bench measures signatures verified, bytes shipped and time spent
per verified header for the guest light client (24 validators, one
fingerprint each) versus a Picasso-sized Tendermint client (~190 commit
signatures plus validator-set handling).
"""

from conftest import emit
from repro.experiments.lightclient_cost import light_client_cost_comparison
from repro.metrics.table import format_table


def run():
    return light_client_cost_comparison(headers=30)


def test_lightclient_cost(benchmark):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["client", "validators", "sigs/header", "bytes/header", "ms/header"],
        [[p.name, str(p.validators), str(p.signatures_verified),
          str(p.update_bytes), f"{p.seconds_per_header * 1000:.2f}"]
         for p in points],
        title="SVI-D - cost of following each chain design",
    ))

    guest = next(p for p in points if p.name == "guest")
    tendermint = next(p for p in points if p.name == "tendermint")
    # The guest needs several times fewer signature verifications...
    assert guest.signatures_verified * 4 < tendermint.signatures_verified
    # ...and proportionally less wire data per header.
    assert guest.update_bytes * 3 < tendermint.update_bytes
