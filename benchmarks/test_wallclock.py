"""Wall-clock throughput of the simulator itself — the hot-path gate.

Simulated-time results answer the paper's questions; *wall-clock* time
decides how far the experiments can scale (docs/PERFORMANCE.md).  This
bench runs the 10k-packet soak — the workload that dominated CI before
the hot-path overhaul — untraced and unprofiled, and asserts the
overhaul holds: events/sec of wall time must stay at least 3x the
recorded pre-optimisation baseline.  The raw numbers, alongside that
baseline, are written to ``BENCH_wallclock.json`` at the repo root.

The baseline constants were measured on the same machine class CI uses,
at the same soak shape (seed 29, 10k packets, 40 pps, 3 channels), on
the commit immediately before the overhaul.  Re-measure them with::

    git stash  # or check out the pre-overhaul commit
    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.experiments.profiling import SoakConfig, run_soak
    print(json.dumps(run_soak(SoakConfig()).to_json(), indent=2))
    EOF

Machines vary, so the gate compares *ratios* on one box, not absolute
rates across boxes: the 3x floor leaves a wide margin under the ~14x
speedup measured at the time of the overhaul.
"""

from __future__ import annotations

import json
from pathlib import Path

from conftest import emit

from repro.experiments.profiling import SoakConfig, render_soak_result, run_soak

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Pre-overhaul measurement of the exact soak below (see module docstring
#: for the re-measurement recipe).
_BASELINE = {
    "events_dispatched": 72745,
    "wall_seconds": 160.87,
    "events_per_sec": 452.2,
    "packets_per_sec": 62.17,
}

#: The overhaul's target: at least this multiple of the baseline
#: events/sec.  Measured speedup was ~14x; 3x absorbs machine variance.
_MIN_SPEEDUP = 3.0


def test_wallclock_soak_speedup():
    config = SoakConfig()  # the full 10k-packet soak, untraced overhead aside
    result = run_soak(config)
    emit(render_soak_result(result, title="wallclock-10k"))

    payload = {
        "config": {
            "seed": config.seed,
            "packets": config.packets,
            "offered_pps": config.offered_pps,
            "channels": config.channels,
        },
        "baseline": _BASELINE,
        "optimized": result.to_json(),
        "speedup_events_per_sec": round(
            result.events_per_sec / _BASELINE["events_per_sec"], 2),
        "min_speedup": _MIN_SPEEDUP,
    }
    out = _REPO_ROOT / "BENCH_wallclock.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # The workload itself must be untouched by the optimisation work:
    # every packet offered is delivered, none left in flight.
    assert result.sent == result.delivered
    assert result.outstanding == 0
    # The simulation is bit-identical to the pre-overhaul run as long as
    # the soak shape is unchanged; a drift here means a *semantic*
    # change snuck in with a perf patch (re-measure the baseline if the
    # workload shape was changed deliberately).
    assert result.events_dispatched == _BASELINE["events_dispatched"], (
        result.events_dispatched, _BASELINE["events_dispatched"])

    speedup = result.events_per_sec / _BASELINE["events_per_sec"]
    assert speedup >= _MIN_SPEEDUP, (
        f"hot paths regressed: {result.events_per_sec:,.0f} events/s is only "
        f"{speedup:.1f}x the {_BASELINE['events_per_sec']:,.0f} events/s "
        f"baseline (floor {_MIN_SPEEDUP}x)")
    assert result.packets_per_sec >= _MIN_SPEEDUP * _BASELINE["packets_per_sec"]
