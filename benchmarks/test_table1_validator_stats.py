"""Table I — per-validator signing statistics.

Paper: 17 active validators with heterogeneous signature counts and
fixed fees, 7 silent validators, a huge maximum latency for validator #1
(its operator-error outage), and essentially no correlation between what
validators paid and how fast they signed (coefficient 0.007, §V-C).
"""

from conftest import emit
from repro.experiments.report import render_table1


def extract(evaluation):
    return [(row.index, row.signatures, row.cost_cents) for row in evaluation.validator_rows]


def test_table1_validator_stats(evaluation, benchmark):
    rows = benchmark(extract, evaluation)
    emit(render_table1(evaluation))

    active = [row for row in evaluation.validator_rows if row.signatures > 0]
    assert len(active) >= 12
    assert evaluation.silent_validators == 7

    # Signature counts are heterogeneous, #1 highest (it ran all month).
    counts = {row.index: row.signatures for row in active}
    assert counts[1] == max(counts.values())
    assert max(counts.values()) > 3 * min(counts.values())

    # Fees replay the published per-validator costs exactly.
    published = {1: 1.00, 2: 1.40, 3: 0.25, 16: 0.20, 17: 0.20}
    for index, cents in published.items():
        row = next((r for r in active if r.index == index), None)
        if row is not None:
            assert abs(row.cost_cents - cents) < 0.02

    # Validator #1's outage shows as an extreme maximum latency.
    row1 = next(r for r in evaluation.validator_rows if r.index == 1)
    assert row1.latency is not None and row1.latency.maximum > 100 * row1.latency.median

    # Paying more does not buy meaningfully faster signing.
    assert abs(evaluation.cost_latency_correlation) < 0.5
