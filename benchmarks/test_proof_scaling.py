"""How proof size scales with store size — the 4-vs-5-transaction story.

§V-A: ReceivePacket needed 4-5 transactions "depending on the size of
the packet".  The dominant payload is the membership proof, whose size
grows with the *depth* of the counterparty's store (O(log16 n) branch
steps of ~15 sibling hashes each).  This bench measures proof bytes and
the resulting chunk+exec transaction count across store sizes.
"""

import hashlib
import math

from conftest import emit
from repro.guest.instructions import BufferedPacketMsg
from repro.lightclient.chunked import usable_chunk_bytes
from repro.metrics.table import format_table
from repro.trie.trie import SealableTrie


def measure():
    rows = []
    for entries in (100, 1_000, 10_000, 100_000):
        trie = SealableTrie()
        target = None
        for index in range(entries):
            key = hashlib.sha256(b"scaling" + index.to_bytes(8, "big")).digest()
            trie.set(key, key)
            if index == entries // 2:
                target = key
        proof = trie.prove(target)
        staged = BufferedPacketMsg(
            packet_bytes=bytes(140),       # a typical ICS-20 packet
            proof_bytes=proof.to_bytes(),
            proof_height=1_000,
        ).to_bytes()
        chunks = math.ceil(len(staged) / usable_chunk_bytes())
        rows.append((entries, len(proof.to_bytes()), len(proof.steps),
                     chunks + 1))
    return rows


def test_proof_scaling(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(format_table(
        ["store entries", "proof bytes", "steps", "delivery txs"],
        [[str(n), str(size), str(steps), str(txs)]
         for n, size, steps, txs in rows],
        title="Proof size vs store size (drives the SV-A 4-5 tx counts)",
    ))

    sizes = {n: size for n, size, _, _ in rows}
    txs = {n: t for n, _, _, t in rows}
    # Logarithmic growth: 1000x more entries adds only a few steps.
    assert sizes[100_000] < 3 * sizes[100]
    # The paper's regime: a production-scale store needs 4-6 txs.
    assert 4 <= txs[10_000] <= 6
    assert 4 <= txs[100_000] <= 6
