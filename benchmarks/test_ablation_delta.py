"""Ablation — the Delta parameter (§III-A / §V-C).

Delta forces an empty block whenever the head grows stale, so that
counterparties can observe guest time for IBC timeouts.  Smaller Delta
means more empty blocks (more validator signing cost); larger Delta
means slower timeout detection.  The deployment chose 1 hour.
"""

from conftest import emit
from repro.experiments.ablations import delta_sweep
from repro.metrics.table import format_table


def run():
    return delta_sweep(deltas=(600.0, 1_800.0, 3_600.0), duration=8 * 3600.0)


def test_ablation_delta(benchmark):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["Delta (s)", "blocks", "empty", "empty share", "mean interval (s)"],
        [[f"{p.delta_seconds:.0f}", str(p.blocks), str(p.empty_blocks),
          f"{p.empty_share:.2f}", f"{p.mean_interval:.0f}"] for p in points],
        title="Ablation - Delta sweep (fixed traffic)",
    ))

    by_delta = {p.delta_seconds: p for p in points}
    # Smaller Delta => more blocks and a larger share of empty ones.
    assert by_delta[600.0].blocks > by_delta[3_600.0].blocks
    assert by_delta[600.0].empty_share > by_delta[3_600.0].empty_share
    # Mean interval grows with Delta but is capped by traffic.
    assert by_delta[600.0].mean_interval < by_delta[3_600.0].mean_interval
