"""Ablation — quorum stake fraction vs finalisation latency (§III-B).

The contract finalises a block once signatures cover the quorum stake.
Demanding more stake is safer but slower: with realistic validator
uptime, high quorums increasingly wait for the periodic catch-up sweep.
"""

from fractions import Fraction

from conftest import emit
from repro.experiments.ablations import quorum_sweep
from repro.metrics.table import format_table


def run():
    return quorum_sweep(
        fractions=(Fraction(1, 2), Fraction(2, 3), Fraction(9, 10)),
        duration=3 * 3600.0,
    )


def test_ablation_quorum(benchmark):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["quorum", "p50 finalisation (s)", "max (s)", "stalled"],
        [[str(p.quorum_fraction), f"{p.finalisation_latency.median:.1f}",
          f"{p.finalisation_latency.maximum:.1f}", str(p.stalled_blocks)]
         for p in points],
        title="Ablation - quorum stake fraction",
    ))

    by_fraction = {p.quorum_fraction: p for p in points}
    # More required stake never finalises faster.
    assert (by_fraction[Fraction(1, 2)].finalisation_latency.median
            <= by_fraction[Fraction(9, 10)].finalisation_latency.median + 0.5)
    # The paper's 2/3 keeps median finalisation in single-digit seconds.
    assert by_fraction[Fraction(2, 3)].finalisation_latency.median < 15.0
