"""Fig. 2 — delay between SendPacket and the FinalisedBlock event.

Paper: all but three transfers completed within 21 seconds; the
stragglers were caused by validator signing delays (§V-A).
"""

from conftest import emit
from repro.experiments.report import render_fig2
from repro.metrics.stats import fraction_below


def test_fig2_send_latency(evaluation, benchmark):
    latencies = benchmark(evaluation.send_latencies)
    emit(render_fig2(evaluation))

    assert len(latencies) > 50, "need a meaningful sample"
    # Shape: the bulk completes within 21 s...
    assert fraction_below(latencies, 21.0) > 0.90
    # ...with a small number of much slower stragglers (the §V-C outage).
    stragglers = [value for value in latencies if value >= 21.0]
    assert stragglers, "the outage should produce at least one straggler"
    assert len(stragglers) < 0.1 * len(latencies)
    assert max(stragglers) > 120.0
